"""Benchmark: NSGA-II population-front search vs. the weight-sweep front.

Pins the population-front engine's two claims to numbers on the
image-encoder workload (4x3 mesh, CDCM pricing):

* **quality** — under a shared reference, the NSGA-II front's hypervolume is
  at least that of a budget-matched random-pool weight sweep (the PR 3 way
  of producing fronts), and the returned front is mutually non-dominated;
* **throughput** — evaluations/second of the NSGA-II run (generation
  pricing through ``evaluate_metrics_batch``), recorded into
  ``BENCH_nsga2.json`` with the hypervolume ratio when
  ``REPRO_BENCH_RECORD=1`` so the trajectory tracks both.

Deterministic: every stochastic input is seeded with ``BENCH_SEED``.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.analysis.pareto import hypervolume, weight_sweep_front
from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.nsga2 import NSGA2Search, Nsga2Parameters
from repro.workloads.embedded import image_encoder

FRONT_KEYS = ("dynamic_energy", "time")
PARAMS = Nsga2Parameters(population_size=24, generations=16)
SWEEP_WEIGHTS = 9


@pytest.mark.benchmark(group="nsga2-front")
def test_nsga2_front_quality_and_throughput(benchmark):
    cdcg = image_encoder()
    platform = Platform(mesh=Mesh(4, 3))
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=BENCH_SEED)

    def run():
        context = CdcmEvaluationContext(cdcg, platform)
        start = time.perf_counter()
        result = NSGA2Search(PARAMS, keys=FRONT_KEYS).search(
            context, initial, rng=BENCH_SEED
        )
        elapsed = time.perf_counter() - start
        pool = [
            Mapping.random(cdcg.cores(), platform.num_tiles, rng=BENCH_SEED + i)
            for i in range(result.evaluations)
        ]
        sweep = weight_sweep_front(
            context, pool, weights=SWEEP_WEIGHTS, keys=FRONT_KEYS
        )
        return result, sweep, elapsed

    result, sweep, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)

    union = list(result.front) + list(sweep.front)
    reference = {key: max(p.metrics[key] for p in union) for key in FRONT_KEYS}
    nsga2_hv = hypervolume(result.front, reference=reference, keys=FRONT_KEYS)
    sweep_hv = hypervolume(sweep.front, reference=reference, keys=FRONT_KEYS)
    rate = result.evaluations / elapsed
    # None (not inf) when the sweep front is fully dominated: the trajectory
    # file must stay strictly finite-numeric for tools/plot_bench.py.
    ratio = nsga2_hv / sweep_hv if sweep_hv > 0 else None

    emit(
        "NSGA-II - front quality vs budget-matched weight sweep (image encoder, 4x3)",
        "\n".join(
            [
                f"NSGA-II front: {len(result.front)} point(s), "
                f"{result.evaluations} evaluations in {elapsed:.2f}s "
                f"({rate:,.1f} evals/s)",
                f"sweep front:   {len(sweep.front)} point(s) from "
                f"{SWEEP_WEIGHTS} weight vectors over {result.evaluations} candidates",
                f"hypervolume:   NSGA-II {nsga2_hv:,.0f} vs sweep {sweep_hv:,.0f} "
                + (
                    f"({ratio:.2f}x, shared reference)"
                    if ratio is not None
                    else "(sweep front fully dominated)"
                ),
            ]
        ),
    )
    record_sample(
        "BENCH_nsga2.json",
        {
            "bench": "nsga2_front",
            "evals_per_s": rate,
            "front_size": len(result.front),
            "nsga2_hypervolume": nsga2_hv,
            "sweep_hypervolume": sweep_hv,
            "hypervolume_ratio": ratio,
        },
    )

    # The acceptance bars of the population-front engine: a clean front that
    # is at least as good as the scalarisation sweep under the same budget.
    for a in result.front:
        for b in result.front:
            assert a is b or not a.metrics.dominates(b.metrics, FRONT_KEYS)
    assert nsga2_hv >= sweep_hv
