"""Section 5 CPU-time claim — evaluation cost of CDCM vs CWM.

The paper states that the CWM algorithm's complexity is proportional to the
number of core-to-core communications (NCC) while CDCM's is proportional to
the number of dependences and packets (NDP), that CPU time grows roughly
linearly with the NDP/NCC ratio, and that the worst case cost only 23 % more
CPU time than CWM.

This bench measures the per-evaluation cost of both objectives over the small
suite benchmarks and reports the measured cost ratio against the NDP/NCC
ratio.  Our pure-Python CDCM evaluator replays every packet over its route, so
its per-evaluation cost ratio is larger than the paper's (see EXPERIMENTS.md);
the *linear growth in NDP/NCC* is the reproducible shape.
"""

import pytest

from conftest import emit
from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective, cwm_objective
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.workloads.suite import table1_suite


def _evaluation_costs(entry, repeats: int = 20):
    cdcg = entry.build()
    cwg = cdcg_to_cwg(cdcg)
    platform = Platform(mesh=entry.mesh)
    # Distinct mappings with the context memo disabled: both objectives go
    # through the repro.eval layer (shared route tables), and what is measured
    # is the marginal cost of pricing a *new* candidate — memo hits would
    # otherwise collapse the repeats to dictionary lookups.
    mappings = [
        Mapping.random(cdcg.cores(), platform.num_tiles, rng=seed)
        for seed in range(repeats)
    ]
    cwm = cwm_objective(cwg, platform, cache_size=0)
    cdcm = cdcm_objective(cdcg, platform, cache_size=0)
    for mapping in mappings:
        cwm(mapping)
        cdcm(mapping)
    ncc = cwg.num_communications
    ndp = cdcg.num_packets + cdcg.num_dependences
    return {
        "name": entry.name,
        "ndp_over_ncc": ndp / ncc,
        "cwm_us": 1e6 * cwm.elapsed / cwm.evaluations,
        "cdcm_us": 1e6 * cdcm.elapsed / cdcm.evaluations,
    }


@pytest.mark.benchmark(group="cpu-time")
def test_cpu_time_ratio_vs_ndp_ncc(benchmark):
    entries = table1_suite(max_noc_tiles=12)

    def run():
        return [_evaluation_costs(entry) for entry in entries]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'benchmark':<10} {'NDP/NCC':>8} {'CWM us/eval':>12} "
        f"{'CDCM us/eval':>13} {'ratio':>7}"
    ]
    ratios = []
    for record in sorted(results, key=lambda r: r["ndp_over_ncc"]):
        ratio = record["cdcm_us"] / record["cwm_us"]
        ratios.append((record["ndp_over_ncc"], ratio))
        lines.append(
            f"{record['name']:<10} {record['ndp_over_ncc']:>8.2f} "
            f"{record['cwm_us']:>12.1f} {record['cdcm_us']:>13.1f} {ratio:>7.2f}"
        )

    # Shape check: the evaluation-cost ratio grows with NDP/NCC (compare the
    # mean ratio of the lower half against the upper half).
    half = len(ratios) // 2
    low = sum(r for _, r in ratios[:half]) / half
    high = sum(r for _, r in ratios[half:]) / (len(ratios) - half)
    assert high >= 0.8 * low  # not collapsing; typically high > low

    emit(
        "Section 5 - per-evaluation CPU cost, CDCM vs CWM "
        "(paper: at most 23 % more total CPU time; here the ratio is larger "
        "because the CWM evaluation is per-flow while CDCM replays per-packet)",
        "\n".join(lines),
    )
