"""Microbenchmarks of the CDCM scheduler (the cost driver of every CDCM search).

Measures how one schedule replay scales with the number of packets and with
the NoC size — the quantities behind the paper's NDP-proportional complexity
claim — plus the raw throughput on the embedded applications.

Schedulers price packet paths off the shared
:class:`~repro.eval.route_table.RouteTable`; the table is built (and cached)
when the scheduler is constructed, outside the timed region, so the numbers
below measure the replay itself, exactly as a search loop experiences it.
"""

import pytest

from repro.core.mapping import Mapping
from repro.eval.route_table import get_route_table
from repro.noc.platform import Platform
from repro.noc.scheduler import CdcmScheduler
from repro.noc.topology import Mesh
from repro.workloads.embedded import embedded_applications
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec


def _benchmark_case(num_cores: int, num_packets: int, mesh: Mesh, seed: int = 1):
    spec = TgffSpec(
        name=f"sched-{num_packets}",
        num_cores=num_cores,
        num_packets=num_packets,
        total_bits=num_packets * 640,
    )
    cdcg = TgffLikeGenerator(seed).generate(spec)
    platform = Platform(mesh=mesh)
    mapping = Mapping.random(cdcg.cores(), platform.num_tiles, rng=seed)
    scheduler = CdcmScheduler(platform, route_table=get_route_table(platform))
    return scheduler, cdcg, mapping


@pytest.mark.benchmark(group="scheduler-packets")
@pytest.mark.parametrize("num_packets", [25, 100, 400])
def test_scheduler_scales_with_packets(benchmark, num_packets):
    scheduler, cdcg, mapping = _benchmark_case(
        num_cores=12, num_packets=num_packets, mesh=Mesh(4, 4)
    )
    result = benchmark(scheduler.schedule, cdcg, mapping)
    assert result.execution_time > 0
    assert len(result.packet_schedules) == num_packets


@pytest.mark.benchmark(group="scheduler-mesh")
@pytest.mark.parametrize("width,height", [(3, 3), (6, 6), (10, 10)])
def test_scheduler_scales_with_mesh(benchmark, width, height):
    mesh = Mesh(width, height)
    scheduler, cdcg, mapping = _benchmark_case(
        num_cores=min(20, mesh.num_tiles), num_packets=150, mesh=mesh
    )
    result = benchmark(scheduler.schedule, cdcg, mapping)
    assert result.execution_time > 0


@pytest.mark.benchmark(group="scheduler-embedded")
@pytest.mark.parametrize("app_name", ["fft8", "object-recognition", "image-encoder"])
def test_scheduler_on_embedded_applications(benchmark, app_name):
    cdcg = embedded_applications()[app_name]
    platform = Platform(mesh=Mesh(3, 3))
    mapping = Mapping.random(cdcg.cores(), platform.num_tiles, rng=2)
    scheduler = CdcmScheduler(platform)
    result = benchmark(scheduler.schedule, cdcg, mapping)
    assert result.execution_time >= cdcg.critical_path_time()
