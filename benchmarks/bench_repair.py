"""CDCM annealing throughput — bounded repair vs full-replay pricing.

The bounded-repair engine (:mod:`repro.eval.repair`) claims two things:

* **identity at resync** — whenever the engine reports a resynced outcome
  its tracked metrics are a full replay by construction, so the running
  ``cost0 + sum(deltas)`` stream must match a fresh evaluation exactly.
  This is asserted *always*, like the identity halves of the other benches;
* **throughput** — pricing swap moves by bounded repair (seeds + windowed
  occupants against a frozen background) is at least 5x the full-replay
  evaluations/sec inside the same simulated-annealing loop.

The operating point is a contention-heavy but repair-friendly workload: a
16x16 mesh with 96 cores and 128 packets in 8 dependence levels, high
``computation_scale`` so routes are long-lived but sparse in time, and a
repair policy that trusts the drift contract between scheduled resyncs
(``closure_depth=0`` replays seeds and windowed occupants only — measured
fastest at equal search quality on this workload).

The >= 5x bar follows the suite's perf-bar convention (cf. the >= 10x array
bar in ``bench_vector.py``): rates are recorded first, then the bar can be
waived on constrained or instrumented interpreters by setting
``REPRO_BENCH_NO_PERF_BARS=1``.  The identity assertions always run.

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_repair.json`` in the working directory — the file the CI
benchmark-trajectory job uploads.
"""

import os
import random
import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.core.cdcm import CdcmEvaluator
from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective
from repro.eval.context import CdcmEvaluationContext
from repro.eval.repair import CdcmRepairEngine, RepairPolicy
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

_SKIP_PERF_BARS = os.environ.get("REPRO_BENCH_NO_PERF_BARS", "0") not in (
    "0",
    "",
    "false",
)

#: The repair policy under measurement: long scheduled-resync period, drift
#: contract trusted in between, no frontier-extension rounds.
_POLICY = RepairPolicy(closure_depth=0, max_drift=1.0, resync_every=128)


def _workload():
    spec = TgffSpec(
        name="repair-16x16",
        num_cores=96,
        num_packets=128,
        total_bits=128 * 4_096,
        levels=8,
        computation_scale=16.0,
    )
    cdcg = TgffLikeGenerator(BENCH_SEED).generate(spec)
    return cdcg, Platform(mesh=Mesh(16, 16))


def _initial_mapping(cdcg, platform):
    cores = sorted(cdcg.cores())
    return Mapping(
        {core: tile for tile, core in enumerate(cores)}, platform.num_tiles
    )


def _annealing_rate(cdcg, platform, initial, *, repair):
    context = CdcmEvaluationContext(
        cdcg, platform, repair=repair, repair_policy=_POLICY
    )
    objective = cdcm_objective(cdcg, platform, context=context)
    schedule = AnnealingSchedule(max_evaluations=1_000, moves_per_temperature=128)
    searcher = SimulatedAnnealing(schedule, use_delta=True)
    start = time.perf_counter()
    result = searcher.search(objective, initial, rng=99)
    elapsed = time.perf_counter() - start
    return result, result.evaluations / elapsed


def _assert_identity_at_resync(cdcg, platform, initial):
    """Walk accepted swaps; at every resynced step the tracked cost is exact."""
    engine = CdcmRepairEngine(
        cdcg,
        platform,
        policy=RepairPolicy(closure_depth=0, max_drift=1.0, resync_every=8),
    )
    evaluator = CdcmEvaluator(platform)
    rng = random.Random(BENCH_SEED)
    mapping = initial
    tracked = evaluator.metrics(cdcg, mapping)["energy"]
    resyncs = 0
    for _ in range(48):
        a = rng.randrange(platform.num_tiles)
        b = rng.randrange(platform.num_tiles)
        tracked += engine.metric_delta(mapping, a, b)["energy"]
        mapping = mapping.swap_tiles(a, b)
        if engine.last_outcome.resynced:
            resyncs += 1
            truth = evaluator.metrics(cdcg, mapping)["energy"]
            assert tracked == pytest.approx(truth, rel=1e-9), (
                f"resync identity violated: tracked {tracked!r} vs full "
                f"replay {truth!r}"
            )
    assert resyncs >= 2, "walk too short to exercise the resync guarantee"


@pytest.mark.benchmark(group="repair-throughput")
def test_cdcm_repair_annealing_throughput(benchmark):
    cdcg, platform = _workload()
    initial = _initial_mapping(cdcg, platform)

    # The contract half: resynced steps are full replays, always asserted.
    _assert_identity_at_resync(cdcg, platform, initial)

    def run():
        full_result, full_rate = _annealing_rate(
            cdcg, platform, initial, repair=False
        )
        repair_result, repair_rate = _annealing_rate(
            cdcg, platform, initial, repair=True
        )
        return full_result, full_rate, repair_result, repair_rate

    full_result, full_rate, repair_result, repair_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    emit(
        "Bounded repair - CDCM annealing evaluations/sec, full replay vs "
        "repair deltas (16x16 mesh, 96 cores, 128 packets)",
        f"{'path':<12} {'evals/s':>10} {'best cost':>14}\n"
        f"{'full':<12} {full_rate:>10,.0f} {full_result.best_cost:>14,.0f}\n"
        f"{'repair':<12} {repair_rate:>10,.0f} "
        f"{repair_result.best_cost:>14,.0f}\n"
        f"speedup: {repair_rate / full_rate:.2f}x",
    )
    record_sample(
        "BENCH_repair.json",
        {
            "bench": "bench_repair",
            "full_evals_per_s": full_rate,
            "repair_evals_per_s": repair_rate,
            "speedup": repair_rate / full_rate,
            "full_best_cost": full_result.best_cost,
            "repair_best_cost": repair_result.best_cost,
        },
    )
    # Both walks must land in the same cost neighbourhood — the repair path
    # is a pricing optimisation, not a different search.
    assert repair_result.best_cost <= full_result.best_cost * 1.1
    if _SKIP_PERF_BARS:
        pytest.skip(
            ">= 5x bar waived via REPRO_BENCH_NO_PERF_BARS (identity checks "
            "above already ran)"
        )
    # The acceptance bar: bounded repair prices annealing moves at >= 5x the
    # full-replay evaluations/sec on this workload.
    assert repair_rate >= 5.0 * full_rate
