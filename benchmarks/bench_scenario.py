"""Scenario replay throughput — incremental vs full remapping.

The scenario engine's incremental remap mode claims that after a fault it
re-searches only the region the fault touched (cores on dead tiles plus the
endpoints of rerouted flows), instead of re-placing every live application
from scratch.  On a link-failure storm over a 6x6 mesh carrying three
applications, this bench pins the claim from three sides:

* **identity, always asserted** — replaying the storm twice yields
  bit-identical traces, and both remap modes agree on every event verdict
  (the remap mode changes *how much* is re-searched, never *what happens*);
* **scope, always asserted** — the incremental run searches strictly fewer
  tiles than the full run, while matching or beating its final cost (the
  survivors it pins are placements the full re-search has to rediscover);
* **throughput** — replaying the storm with incremental remapping processes
  events at >= 1.2x the full-remap events/sec.  Like the other perf bars in
  the suite, this bar (and only this bar) can be waived on constrained or
  instrumented interpreters with ``REPRO_BENCH_NO_PERF_BARS=1``.

Set ``REPRO_BENCH_RECORD=1`` to append the measured rates to
``BENCH_scenario.json`` in the working directory — the file the CI
benchmark-trajectory job uploads.
"""

import os
import time

import pytest

from conftest import BENCH_SEED, emit, record_sample
from repro.scenario import (
    ApplicationArrival,
    LinkFailure,
    LinkRepair,
    ScenarioRunner,
    ScenarioScript,
)

_SKIP_PERF_BARS = os.environ.get("REPRO_BENCH_NO_PERF_BARS", "0") not in (
    "0",
    "",
    "false",
)


def _storm_script() -> ScenarioScript:
    """Three applications on a 6x6 mesh under a perimeter link storm.

    The failed links are all on the mesh perimeter, so every degraded
    fabric re-certifies (interior links force detour turns that close CDG
    cycles under deterministic table routing); the storm alternates
    failures and repairs so remap scopes are computed in both directions.
    """
    return ScenarioScript(
        name="bench-storm",
        topology="mesh:6x6",
        seed=BENCH_SEED,
        events=(
            ApplicationArrival("north", 8, 30, 40_000, seed=3),
            ApplicationArrival("south", 8, 30, 40_000, seed=5),
            ApplicationArrival("east", 6, 20, 25_000, seed=7),
            LinkFailure(0, 1),
            LinkFailure(30, 31),
            LinkRepair(0, 1),
            LinkFailure(4, 5),
            LinkFailure(33, 34),
            LinkRepair(30, 31),
            LinkFailure(17, 23),
        ),
    )


def _replay(script: ScenarioScript, remap: str):
    runner = ScenarioRunner(script, remap=remap, engine="annealing")
    start = time.perf_counter()
    trace = runner.run()
    elapsed = time.perf_counter() - start
    return trace, len(script.events) / elapsed


@pytest.mark.benchmark(group="scenario-replay")
def test_scenario_replay_throughput(benchmark):
    script = _storm_script()

    # The identity half: the storm replays deterministically, always.
    first = ScenarioRunner(script, engine="annealing").run()
    second = ScenarioRunner(script, engine="annealing").run()
    assert first.content_hash() == second.content_hash(), (
        "scenario replay is not deterministic"
    )

    def run():
        incremental, incremental_rate = _replay(script, "incremental")
        full, full_rate = _replay(script, "full")
        return incremental, incremental_rate, full, full_rate

    incremental, incremental_rate, full, full_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Both modes agree on what happened — verdict parity, always asserted.
    for inc, ful in zip(incremental.records, full.records):
        assert (inc.outcome.status, inc.outcome.reason) == (
            ful.outcome.status,
            ful.outcome.reason,
        ), f"remap mode changed the verdict of event {inc.index}"
    assert all(r.outcome.applied for r in incremental.records), (
        "the storm script no longer applies cleanly"
    )

    emit(
        "Scenario replay - events/sec, incremental vs full remapping "
        "(6x6 mesh, 3 applications, 7 fault events)",
        f"{'mode':<14} {'events/s':>10} {'tiles searched':>16} "
        f"{'final cost':>14}\n"
        f"{'incremental':<14} {incremental_rate:>10,.1f} "
        f"{incremental.total_searched_tiles:>16,} "
        f"{incremental.final_cost:>14,.1f}\n"
        f"{'full':<14} {full_rate:>10,.1f} "
        f"{full.total_searched_tiles:>16,} {full.final_cost:>14,.1f}\n"
        f"speedup: {incremental_rate / full_rate:.2f}x",
    )
    record_sample(
        "BENCH_scenario.json",
        {
            "bench": "bench_scenario",
            "incremental_events_per_s": incremental_rate,
            "full_events_per_s": full_rate,
            "speedup": incremental_rate / full_rate,
            "incremental_searched_tiles": incremental.total_searched_tiles,
            "full_searched_tiles": full.total_searched_tiles,
            "incremental_final_cost": incremental.final_cost,
            "full_final_cost": full.final_cost,
        },
    )

    # The scope half of the acceptance criterion, always asserted:
    # strictly fewer tiles re-searched, at matching-or-better cost.
    assert incremental.total_searched_tiles < full.total_searched_tiles, (
        f"incremental remap searched {incremental.total_searched_tiles} "
        f"tiles, full remap {full.total_searched_tiles}"
    )
    assert incremental.final_cost <= full.final_cost * (1 + 1e-9), (
        f"incremental final cost {incremental.final_cost} worse than full "
        f"remap's {full.final_cost}"
    )

    if _SKIP_PERF_BARS:
        pytest.skip(
            ">= 1.2x bar waived via REPRO_BENCH_NO_PERF_BARS (identity and "
            "scope checks above already ran)"
        )
    assert incremental_rate >= 1.2 * full_rate
