"""Ablation benches around the Table 2 experiment.

These stress the design choices DESIGN.md calls out:

* routing (XY vs YX) — the CDCM advantage should survive a change of the
  deterministic dimension order;
* leakage scaling — sweeping the router leakage power moves the ECS metric
  between the 0.35 um regime (savings near zero) and the deep-submicron
  regime (savings approaching the execution-time reduction);
* simulated-annealing effort — how much of the CDCM advantage survives a
  cheap search;
* local-link serialisation — treating core-router links as contention
  resources (the paper does not) must not change the CWM/CDCM ranking;
* search-engine comparison — SA vs random sampling vs greedy construction vs
  the GA extension, on the same CDCM objective and evaluation budget.
"""

import pytest

from conftest import BENCH_SEED, emit
from repro.analysis.ablation import (
    annealing_effort_ablation,
    leakage_ablation,
    local_link_ablation,
    routing_ablation,
)
from repro.core.framework import FRWFramework
from repro.core.mapping import Mapping
from repro.noc.platform import Platform
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.search.greedy import GreedyConstructive
from repro.search.random_search import RandomSearch
from repro.workloads.suite import suite_entry_by_name

#: Benchmark used by the ablations: medium-sized, strongly contended.
ABLATION_ENTRY = "3x3-c"


@pytest.fixture(scope="module")
def ablation_case():
    entry = suite_entry_by_name(ABLATION_ENTRY)
    return entry.build(), Platform(mesh=entry.mesh)


def _render(results):
    return "\n".join(result.describe() for result in results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_routing(benchmark, ablation_case, bench_config):
    cdcg, platform = ablation_case
    results = benchmark.pedantic(
        routing_ablation,
        args=(cdcg, platform),
        kwargs={"config": bench_config, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    assert {r.value for r in results} == {"xy", "yx"}
    emit("Ablation - XY vs YX routing", _render(results))


@pytest.mark.benchmark(group="ablation")
def test_ablation_leakage(benchmark, ablation_case, bench_config):
    cdcg, platform = ablation_case
    results = benchmark.pedantic(
        leakage_ablation,
        args=(cdcg, platform),
        kwargs={
            "factors": (0.0, 0.5, 1.0, 2.0),
            "config": bench_config,
            "seed": BENCH_SEED,
        },
        rounds=1,
        iterations=1,
    )
    # With zero leakage the two ECS columns collapse onto the dynamic-energy
    # difference; they only differ through the (small) difference in the
    # ERbit/ELbit ratio between the two technologies.
    zero = next(r for r in results if r.value == "0")
    assert zero.ecs_035 == pytest.approx(zero.ecs_007, abs=0.02)
    emit("Ablation - router leakage scaling", _render(results))


@pytest.mark.benchmark(group="ablation")
def test_ablation_annealing_effort(benchmark, ablation_case):
    cdcg, platform = ablation_case
    results = benchmark.pedantic(
        annealing_effort_ablation,
        args=(cdcg, platform),
        kwargs={"seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    assert len(results) == 3
    emit("Ablation - simulated-annealing effort", _render(results))


@pytest.mark.benchmark(group="ablation")
def test_ablation_local_link_serialisation(benchmark, ablation_case, bench_config):
    cdcg, platform = ablation_case
    results = benchmark.pedantic(
        local_link_ablation,
        args=(cdcg, platform),
        kwargs={"config": bench_config, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    assert [r.value for r in results] == ["False", "True"]
    emit("Ablation - local-link serialisation", _render(results))


@pytest.mark.benchmark(group="ablation")
def test_ablation_search_engines(benchmark, ablation_case):
    """Quality of the CDCM objective reached by different engines."""
    cdcg, platform = ablation_case
    framework = FRWFramework(cdcg, platform)
    schedule = AnnealingSchedule(cooling_factor=0.92, max_evaluations=2_000)
    engines = {
        "annealing": SimulatedAnnealing(schedule),
        "random": RandomSearch(samples=2_000),
        "genetic": GeneticSearch(GeneticParameters(population_size=20, generations=40)),
        "greedy": GreedyConstructive(framework.cwg, platform),
    }

    def run():
        outcomes = {}
        for name, engine in engines.items():
            outcome = framework.map(
                model="cdcm", searcher=engine, seed=BENCH_SEED
            )
            outcomes[name] = outcome
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    random_cost = outcomes["random"].cost
    assert outcomes["annealing"].cost <= random_cost * 1.05

    lines = [
        f"{name:<10} cost={outcome.cost:>14.1f} pJ  "
        f"evaluations={outcome.evaluations:>6}  cpu={outcome.cpu_time:.2f}s"
        for name, outcome in sorted(outcomes.items(), key=lambda kv: kv[1].cost)
    ]
    emit("Ablation - search engines on the CDCM objective", "\n".join(lines))
