"""The evaluation engine (repro.eval): route tables, contexts, deltas."""

import numpy as np
import pytest

from repro.core.cwm import CwmEvaluator
from repro.core.cdcm import CdcmEvaluator
from repro.core.mapping import Mapping
from repro.core.objective import CountingObjective, cdcm_objective, cwm_objective
from repro.eval.context import (
    CdcmEvaluationContext,
    CwmEvaluationContext,
    EvaluationContext,
)
from repro.eval.route_table import (
    RouteTable,
    clear_route_table_cache,
    get_route_table,
)
from repro.graphs.convert import cdcg_to_cwg
from repro.graphs.cwg import CWG, cwg_from_edges
from repro.noc.platform import Platform
from repro.noc.routing import XYRouting, YXRouting
from repro.noc.topology import Mesh, Torus
from repro.search.annealing import FAST_SCHEDULE, SimulatedAnnealing
from repro.search.base import delta_callable
from repro.search.greedy import GreedyConstructive
from repro.utils.errors import ConfigurationError, MappingError


def _random_cwg(rng: np.random.Generator, num_cores: int) -> CWG:
    """A random connected-ish CWG over ``c0..c{n-1}`` with integer volumes."""
    cores = [f"c{i}" for i in range(num_cores)]
    edges = []
    for source in range(num_cores):
        for target in range(num_cores):
            if source != target and rng.random() < 0.4:
                edges.append(
                    (cores[source], cores[target], int(rng.integers(1, 5000)))
                )
    if not edges:  # guarantee at least one communication
        edges.append((cores[0], cores[-1], int(rng.integers(1, 5000))))
    return cwg_from_edges("random", edges, cores=cores)


class TestRouteTable:
    @pytest.mark.parametrize("mesh", [Mesh(2, 2), Mesh(4, 3), Torus(3, 3)])
    @pytest.mark.parametrize("routing", [XYRouting(), YXRouting()])
    def test_matches_live_routing(self, mesh, routing):
        platform = Platform(mesh=mesh, routing=routing)
        table = RouteTable.for_platform(platform)
        for source in range(mesh.num_tiles):
            for target in range(mesh.num_tiles):
                path = routing.route(mesh, source, target)
                assert list(table.path(source, target)) == path
                assert table.hop_count(source, target) == len(path)
                assert list(table.links(source, target)) == list(
                    zip(path, path[1:])
                )

    def test_bit_energy_matches_equation_2(self):
        from repro.energy.bit_energy import bit_energy_route

        platform = Platform(mesh=Mesh(3, 3))
        for include_local in (True, False):
            table = RouteTable.for_platform(platform, include_local=include_local)
            for source in range(9):
                for target in range(9):
                    hops = table.hop_count(source, target)
                    assert table.bit_energy(source, target) == bit_energy_route(
                        platform.technology, hops, include_local
                    )

    def test_rejects_out_of_range_pairs(self):
        table = RouteTable.for_platform(Platform(mesh=Mesh(2, 2)))
        with pytest.raises(ConfigurationError):
            table.path(0, 4)
        with pytest.raises(ConfigurationError):
            table.hop_count(-1, 0)

    def test_lazy_table_agrees_with_eager(self):
        platform = Platform(mesh=Mesh(3, 4))
        eager = RouteTable.for_platform(platform, precompute=True)
        lazy = RouteTable.for_platform(platform, precompute=False)
        assert eager.is_precomputed and not lazy.is_precomputed
        assert lazy.flat_bit_energy() is None
        for source in range(12):
            for target in range(12):
                assert lazy.path(source, target) == eager.path(source, target)
                assert lazy.bit_energy(source, target) == eager.bit_energy(
                    source, target
                )

    def test_shared_cache_reuses_tables(self):
        clear_route_table_cache()
        platform = Platform(mesh=Mesh(3, 3))
        table = get_route_table(platform)
        assert get_route_table(platform) is table
        # Same mesh, different include_local -> distinct table.
        assert get_route_table(platform, include_local=False) is not table
        # A different routing class must not alias.
        other = get_route_table(platform.with_routing(YXRouting()))
        assert other is not table

    def test_flat_energy_is_row_major(self):
        platform = Platform(mesh=Mesh(2, 3))
        table = get_route_table(platform)
        flat = table.flat_bit_energy()
        n = table.num_tiles
        for source in range(n):
            for target in range(n):
                assert flat[source * n + target] == table.bit_energy(source, target)


class TestCwmEvaluationContext:
    @pytest.fixture
    def context(self, example_cdcg, example_platform):
        return CwmEvaluationContext(cdcg_to_cwg(example_cdcg), example_platform)

    def test_cost_matches_evaluator(self, example_cdcg, example_platform, context):
        evaluator = CwmEvaluator(example_platform)
        cwg = cdcg_to_cwg(example_cdcg)
        for seed in range(10):
            mapping = Mapping.random(example_cdcg.cores(), 4, rng=seed)
            assert context.cost(mapping) == evaluator.cost(cwg, mapping)

    def test_cost_accepts_plain_dicts(self, context, example_mappings):
        mapping = example_mappings["c"]
        assert context.cost(mapping.assignments()) == context.cost(mapping)

    def test_cost_rejects_unplaced_core(self, context):
        with pytest.raises(MappingError):
            context.cost({"A": 0, "B": 1})

    def test_cost_rejects_out_of_range_tile(self, context):
        with pytest.raises(MappingError):
            context.cost({"A": 0, "B": 1, "E": 2, "F": 99})

    def test_memo_hits(self, context, example_mappings):
        mapping = example_mappings["c"]
        context.cost(mapping)
        before = context.cache_info()
        context.cost(mapping)
        after = context.cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
        context.clear_cache()
        assert context.cache_info().hits == 0

    def test_cache_can_be_disabled(self, example_cdcg, example_platform):
        context = CwmEvaluationContext(
            cdcg_to_cwg(example_cdcg), example_platform, cache_size=0
        )
        mapping = Mapping.random(example_cdcg.cores(), 4, rng=0)
        context.cost(mapping)
        context.cost(mapping)
        info = context.cache_info()
        assert info.hits == 0 and info.misses == 2 and info.currsize == 0

    def test_evaluate_batch(self, context, example_cdcg):
        mappings = [Mapping.random(example_cdcg.cores(), 4, rng=s) for s in range(4)]
        assert context.evaluate_batch(mappings) == [
            context.cost(m) for m in mappings
        ]


class TestCwmDelta:
    """The tentpole property: cost(m.swap_tiles(a, b)) == cost(m) + delta."""

    @pytest.mark.parametrize("trial", range(20))
    def test_delta_is_exact_on_random_instances(self, trial):
        rng = np.random.default_rng(1000 + trial)
        width = int(rng.integers(2, 5))
        height = int(rng.integers(2, 5))
        platform = Platform(mesh=Mesh(width, height))
        num_tiles = platform.num_tiles
        # Leave some tiles empty so empty-tile swaps are exercised too.
        num_cores = int(rng.integers(2, num_tiles + 1))
        cwg = _random_cwg(rng, num_cores)
        context = CwmEvaluationContext(cwg, platform)
        mapping = Mapping.random(cwg.cores, num_tiles, rng=rng)
        cost = context.cost(mapping)
        for _ in range(25):
            tile_a = int(rng.integers(num_tiles))
            tile_b = int(rng.integers(num_tiles))
            delta = context.delta(mapping, tile_a, tile_b)
            swapped = mapping.swap_tiles(tile_a, tile_b)
            assert context.cost(swapped) == pytest.approx(
                cost + delta, rel=1e-12, abs=1e-9
            )
            mapping, cost = swapped, cost + delta

    @pytest.mark.parametrize(
        "topology", [Mesh(3, 3), Torus(3, 3)], ids=["mesh", "torus"]
    )
    def test_delta_conformance_harness(self, topology):
        # Re-pin the CWM delta through the shared conformance harness (the
        # same one that bounds CDCM bounded repair in test_repair.py): the
        # CWM delta claims exactness on every step, so no outcome stream
        # and no drift bound.
        import random

        from delta_harness import check_delta_conformance, random_swaps

        rng = np.random.default_rng(42)
        platform = Platform(mesh=topology)
        cwg = _random_cwg(rng, 6)
        context = CwmEvaluationContext(cwg, platform)
        initial = Mapping.random(cwg.cores, platform.num_tiles, rng=rng)
        report = check_delta_conformance(
            cost=context.cost,
            delta=context.delta,
            initial=initial,
            swaps=random_swaps(platform.num_tiles, 60, random.Random(7)),
            exact_rel=1e-9,
            label=f"cwm-delta[{topology}]",
        )
        assert report.steps == report.exact_steps == 60

    def test_empty_empty_swap_is_zero(self, example_platform):
        cwg = cwg_from_edges("two", [("a", "b", 10)])
        context = CwmEvaluationContext(cwg, example_platform)
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        assert context.delta(mapping, 2, 3) == 0.0

    def test_same_tile_swap_is_zero(self, example_platform):
        cwg = cwg_from_edges("two", [("a", "b", 10)])
        context = CwmEvaluationContext(cwg, example_platform)
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        assert context.delta(mapping, 1, 1) == 0.0

    def test_empty_occupied_swap(self, example_platform):
        cwg = cwg_from_edges("two", [("a", "b", 10)])
        context = CwmEvaluationContext(cwg, example_platform)
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        delta = context.delta(mapping, 0, 2)  # move "a" diagonally away from "b"
        moved = mapping.swap_tiles(0, 2)
        assert context.cost(moved) == pytest.approx(context.cost(mapping) + delta)
        assert delta > 0  # route got longer, energy strictly grows

    def test_swap_between_communicating_cores(self, example_platform):
        # Both endpoints of an edge move at once: the edge must be priced once.
        cwg = cwg_from_edges("pair", [("a", "b", 100), ("b", "a", 50)])
        context = CwmEvaluationContext(cwg, example_platform)
        mapping = Mapping({"a": 0, "b": 3}, num_tiles=4)
        delta = context.delta(mapping, 0, 3)
        swapped = mapping.swap_tiles(0, 3)
        assert context.cost(swapped) == pytest.approx(
            context.cost(mapping) + delta
        )

    def test_delta_rejects_bad_tiles(self, example_platform):
        cwg = cwg_from_edges("two", [("a", "b", 10)])
        context = CwmEvaluationContext(cwg, example_platform)
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        with pytest.raises(MappingError):
            context.delta(mapping, 0, 4)


class TestCdcmEvaluationContext:
    def test_cost_matches_evaluator(self, example_cdcg, example_platform):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        evaluator = CdcmEvaluator(example_platform)
        for seed in range(5):
            mapping = Mapping.random(example_cdcg.cores(), 4, rng=seed)
            assert context.cost(mapping) == evaluator.cost(example_cdcg, mapping)

    def test_repair_gate_controls_delta_support(
        self, example_cdcg, example_platform, example_mappings
    ):
        # Default-on: swap deltas are priced by the bounded-repair engine.
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        assert context.supports_delta
        assert context.supports_metric_delta
        # Pinned off (the ComparisonConfig setting): no delta path at all.
        pinned = CdcmEvaluationContext(
            example_cdcg, example_platform, repair=False
        )
        assert not pinned.supports_delta
        with pytest.raises(NotImplementedError):
            pinned.delta(example_mappings["c"], 0, 1)

    def test_memoises_replays(self, example_cdcg, example_platform, example_mappings):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        first = context.cost(example_mappings["d"])
        second = context.cost(example_mappings["d"])
        assert first == second == pytest.approx(399.0)
        assert context.cache_info().hits == 1

    def test_report_passthrough(self, example_cdcg, example_platform, example_mappings):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        report = context.evaluate(example_mappings["c"])
        assert report.execution_time == pytest.approx(100.0)


class TestObjectiveIntegration:
    def test_cwm_objective_advertises_delta(self, example_cdcg, example_platform):
        objective = cwm_objective(cdcg_to_cwg(example_cdcg), example_platform)
        assert objective.supports_delta
        assert delta_callable(objective) is not None

    def test_cdcm_objective_delta_follows_repair_gate(
        self, example_cdcg, example_platform
    ):
        objective = cdcm_objective(example_cdcg, example_platform)
        assert objective.supports_delta
        assert delta_callable(objective) is not None
        pinned = cdcm_objective(example_cdcg, example_platform, repair=False)
        assert not pinned.supports_delta
        assert delta_callable(pinned) is None

    def test_plain_callable_has_no_delta(self):
        objective = CountingObjective(lambda m: 0.0)
        assert not objective.supports_delta
        assert delta_callable(objective) is None
        with pytest.raises(NotImplementedError):
            objective.delta(Mapping({"a": 0}), 0, 1)

    def test_delta_calls_are_counted(self, example_cdcg, example_platform):
        objective = cwm_objective(cdcg_to_cwg(example_cdcg), example_platform)
        mapping = Mapping.random(example_cdcg.cores(), 4, rng=1)
        objective.delta(mapping, 0, 1)
        objective.delta(mapping, 1, 2)
        assert objective.delta_evaluations == 2
        assert objective.evaluations == 0
        objective.reset()
        assert objective.delta_evaluations == 0

    def test_cache_info_exposed(self, example_cdcg, example_platform):
        objective = cwm_objective(cdcg_to_cwg(example_cdcg), example_platform)
        mapping = Mapping.random(example_cdcg.cores(), 4, rng=1)
        objective(mapping)
        objective(mapping)
        info = objective.cache_info()
        assert info is not None and info.hits == 1
        assert CountingObjective(lambda m: 0.0).cache_info() is None


class TestDeltaAwareSearch:
    def test_annealing_delta_matches_full_walk(self, example_cdcg, example_platform):
        """Delta-priced annealing takes the same walk as full re-evaluation."""
        cwg = cdcg_to_cwg(example_cdcg)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=11)
        fast = SimulatedAnnealing(FAST_SCHEDULE, use_delta=True).search(
            cwm_objective(cwg, example_platform), initial, rng=9
        )
        full = SimulatedAnnealing(FAST_SCHEDULE, use_delta=False).search(
            cwm_objective(cwg, example_platform), initial, rng=9
        )
        assert fast.best_mapping == full.best_mapping
        assert fast.best_cost == pytest.approx(full.best_cost, rel=1e-12)
        assert fast.accepted_moves == full.accepted_moves

    def test_annealing_uses_delta_evaluations(self, example_cdcg, example_platform):
        objective = cwm_objective(cdcg_to_cwg(example_cdcg), example_platform)
        SimulatedAnnealing(FAST_SCHEDULE).search(
            objective, Mapping.random(example_cdcg.cores(), 4, rng=2), rng=5
        )
        assert objective.delta_evaluations > 0
        # Full evaluations only happen at the start and on new bests.
        assert objective.evaluations < objective.delta_evaluations

    def test_annealing_deterministic_with_seed_in_delta_mode(
        self, example_cdcg, example_platform
    ):
        cwg = cdcg_to_cwg(example_cdcg)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=11)
        a = SimulatedAnnealing(FAST_SCHEDULE).search(
            cwm_objective(cwg, example_platform), initial, rng=9
        )
        b = SimulatedAnnealing(FAST_SCHEDULE).search(
            cwm_objective(cwg, example_platform), initial, rng=9
        )
        assert a.best_mapping == b.best_mapping
        assert a.best_cost == b.best_cost

    def test_greedy_refinement_never_hurts(self, example_cdcg, example_platform):
        cwg = cdcg_to_cwg(example_cdcg)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=3)
        refined = GreedyConstructive(cwg, example_platform).search(
            cwm_objective(cwg, example_platform), initial
        )
        plain = GreedyConstructive(cwg, example_platform, refine=False).search(
            cwm_objective(cwg, example_platform), initial
        )
        assert refined.best_cost <= plain.best_cost + 1e-9

    def test_greedy_refined_cost_is_exact(self):
        rng = np.random.default_rng(77)
        cwg = _random_cwg(rng, 7)
        platform = Platform(mesh=Mesh(3, 3))
        objective = cwm_objective(cwg, platform)
        initial = Mapping.random(cwg.cores, 9, rng=5)
        result = GreedyConstructive(cwg, platform).search(objective, initial)
        context = CwmEvaluationContext(cwg, platform)
        assert result.best_cost == pytest.approx(
            context.cost(result.best_mapping), rel=1e-12
        )


class TestEvaluationContextBase:
    def test_rejects_negative_cache_size(self, example_cdcg, example_platform):
        with pytest.raises(ConfigurationError):
            CwmEvaluationContext(
                cdcg_to_cwg(example_cdcg), example_platform, cache_size=-1
            )

    def test_lru_eviction(self, example_cdcg, example_platform):
        context = CwmEvaluationContext(
            cdcg_to_cwg(example_cdcg), example_platform, cache_size=2
        )
        mappings = [Mapping.random(example_cdcg.cores(), 4, rng=s) for s in range(3)]
        for mapping in mappings:
            context.cost(mapping)
        assert context.cache_info().currsize == 2
        context.cost(mappings[0])  # evicted -> miss
        assert context.cache_info().hits == 0

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            EvaluationContext()  # type: ignore[abstract]
