"""The parallel batch-pricing backend (repro.eval.parallel).

The backend contract is *bit-identity*: a batch priced through any backend
must return the exact floats the serial path returns, so that seeded
searches are reproducible regardless of ``n_workers``.  These tests pin that
contract, the picklable-light context design the pool depends on, and the
regression that the paper-reproduction pipeline (``ComparisonConfig``) never
engages a pool.

Worker count for the pool tests comes from ``REPRO_TEST_N_WORKERS``
(default 2), which is how CI exercises the pool explicitly.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective, cwm_objective
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.eval.parallel import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    warm_route_table,
)
from repro.eval.route_table import (
    RouteTable,
    clear_route_table_cache,
    get_route_table,
    register_route_table,
)
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.topology import Mesh, Torus
from repro.search.annealing import FAST_SCHEDULE, SimulatedAnnealing
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.utils.errors import ConfigurationError
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

#: Pool size used by every pooled test; CI pins it to 2 explicitly.
N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))


@pytest.fixture(scope="module")
def workload():
    """A 12-core generated application on a 4x4 mesh."""
    spec = TgffSpec(name="parallel", num_cores=12, num_packets=40, total_bits=60_000)
    cdcg = TgffLikeGenerator(13).generate(spec)
    return cdcg, cdcg_to_cwg(cdcg), Platform(mesh=Mesh(4, 4))


@pytest.fixture(scope="module")
def pool():
    """One shared pool for the whole module (pool startup is the slow part)."""
    backend = ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2)
    yield backend
    backend.close()


def _random_mappings(cwg, num_tiles, count, offset=0):
    return [
        Mapping.random(cwg.cores, num_tiles, rng=offset + seed)
        for seed in range(count)
    ]


class TestBackendEquivalence:
    def test_serial_backend_matches_inline(self, workload):
        _, cwg, platform = workload
        context = CwmEvaluationContext(cwg, platform)
        mappings = _random_mappings(cwg, 16, 16)
        inline = [context._compute_cost(m) for m in mappings]
        assert context.evaluate_batch(mappings, backend=SerialBackend()) == inline

    def test_pooled_cwm_costs_bit_identical(self, workload, pool):
        _, cwg, platform = workload
        context = CwmEvaluationContext(cwg, platform, cache_size=0)
        mappings = _random_mappings(cwg, 16, 24)
        inline = [context._compute_cost(m) for m in mappings]
        assert context.evaluate_batch(mappings, backend=pool) == inline

    def test_pooled_cdcm_costs_bit_identical(self, workload, pool):
        cdcg, _, platform = workload
        context = CdcmEvaluationContext(cdcg, platform, cache_size=0)
        mappings = _random_mappings(cdcg_to_cwg(cdcg), 16, 6)
        inline = [context._compute_cost(m) for m in mappings]
        assert context.evaluate_batch(mappings, backend=pool) == inline

    def test_batch_dedupes_and_fills_memo(self, workload):
        _, cwg, platform = workload

        class CountingBackend(SerialBackend):
            computed = 0

            def evaluate_metrics(self, context, mappings):
                # Batch misses are priced through the vector seam; the memo
                # stores MetricVectors and scalar costs are derived views.
                CountingBackend.computed += len(list(mappings))
                return super().evaluate_metrics(context, mappings)

        context = CwmEvaluationContext(cwg, platform)
        base = _random_mappings(cwg, 16, 4)
        batch = base + [base[0], base[2]]  # duplicates collapse to one compute
        costs = context.evaluate_batch(batch, backend=CountingBackend())
        assert CountingBackend.computed == 4
        assert costs[4] == costs[0] and costs[5] == costs[2]
        # Second batch is answered entirely from the memo.
        context.evaluate_batch(base, backend=CountingBackend())
        assert CountingBackend.computed == 4
        assert context.cache_info().hits == len(base)

    def test_default_backend_at_construction(self, workload):
        _, cwg, platform = workload
        context = CwmEvaluationContext(cwg, platform, backend=SerialBackend())
        mappings = _random_mappings(cwg, 16, 5)
        assert context.backend is not None
        assert context.evaluate_batch(mappings) == [
            context._compute_cost(m) for m in mappings
        ]

    def test_backend_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(n_workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(chunk_size=0)

    def test_small_batches_price_inline(self, workload):
        _, cwg, platform = workload
        backend = ProcessPoolBackend(n_workers=2, min_batch_size=100)
        context = CwmEvaluationContext(cwg, platform)
        mappings = _random_mappings(cwg, 16, 3)
        # Below min_batch_size no pool is ever created.
        assert context.evaluate_batch(mappings, backend=backend) == [
            context._compute_cost(m) for m in mappings
        ]
        assert backend._pool is None
        backend.close()


class TestContextPickling:
    def test_cwm_round_trip_prices_identically(self, workload):
        _, cwg, platform = workload
        context = CwmEvaluationContext(cwg, platform, backend=SerialBackend())
        mappings = _random_mappings(cwg, 16, 8)
        expected = [context._compute_cost(m) for m in mappings]
        clone = pickle.loads(pickle.dumps(context))
        assert [clone._compute_cost(m) for m in mappings] == expected

    def test_cdcm_round_trip_prices_identically(self, workload):
        cdcg, cwg, platform = workload
        context = CdcmEvaluationContext(
            cdcg, platform, metric="weighted", energy_weight=0.7, time_weight=0.3
        )
        mappings = _random_mappings(cwg, 16, 4)
        expected = [context._compute_cost(m) for m in mappings]
        clone = pickle.loads(pickle.dumps(context))
        assert [clone._compute_cost(m) for m in mappings] == expected
        assert clone.evaluator.metric == "weighted"
        assert clone.evaluator.time_weight == 0.3

    def test_custom_route_table_travels_with_pickle(self, workload):
        from repro.eval.route_table import is_shared_route_table

        _, cwg, platform = workload
        custom = RouteTable.for_platform(platform, precompute=True)
        context = CwmEvaluationContext(cwg, platform, route_table=custom)
        clone = pickle.loads(pickle.dumps(context))
        # A non-shared table must ship with the pickle (a worker-side rebuild
        # could resolve different routes for custom routing algorithms)...
        assert not is_shared_route_table(clone.route_table, platform)
        assert clone.route_table.is_precomputed
        # ...while the default shared table is dropped and rebuilt.
        default_clone = pickle.loads(
            pickle.dumps(CwmEvaluationContext(cwg, platform))
        )
        assert is_shared_route_table(default_clone.route_table, platform)

    def test_pickle_is_light(self, workload):
        _, cwg, platform = workload
        context = CwmEvaluationContext(cwg, platform, backend=SerialBackend())
        context.cost(_random_mappings(cwg, 16, 1)[0])  # warm the memo
        clone = pickle.loads(pickle.dumps(context))
        # Memo, backend and delta support state are rebuilt, not shipped.
        assert clone.cache_info().currsize == 0
        assert clone.backend is None
        assert clone.supports_delta
        # The clone's table comes from the process-wide cache, not the pickle.
        assert clone.route_table is get_route_table(platform)


class TestSearchDeterminism:
    def test_ga_results_independent_of_n_workers(self, workload, pool):
        cdcg, _, platform = workload
        params = GeneticParameters(population_size=8, generations=3)
        initial = Mapping.random(cdcg.cores(), 16, rng=4)
        serial = GeneticSearch(params).search(
            cdcm_objective(cdcg, platform), initial, rng=21
        )
        pooled = GeneticSearch(params, backend=pool).search(
            cdcm_objective(cdcg, platform), initial, rng=21
        )
        assert pooled.best_cost == serial.best_cost
        assert pooled.best_mapping == serial.best_mapping
        assert pooled.evaluations == serial.evaluations
        assert pooled.history == serial.history

    def test_ga_n_workers_knob_owns_its_pool(self, workload):
        _, cwg, platform = workload
        initial = Mapping.random(cwg.cores, 16, rng=4)
        serial = GeneticSearch(
            GeneticParameters(population_size=6, generations=2)
        ).search(cwm_objective(cwg, platform), initial, rng=3)
        with GeneticSearch(
            GeneticParameters(population_size=6, generations=2),
            n_workers=N_WORKERS,
        ) as engine:
            pooled = engine.search(cwm_objective(cwg, platform), initial, rng=3)
        assert engine.parameters.n_workers == N_WORKERS
        assert pooled.best_cost == serial.best_cost
        assert pooled.best_mapping == serial.best_mapping

    def test_exhaustive_results_independent_of_backend(self, pool):
        spec = TgffSpec(name="tiny", num_cores=4, num_packets=10, total_bits=8_000)
        cdcg = TgffLikeGenerator(3).generate(spec)
        cwg = cdcg_to_cwg(cdcg)
        platform = Platform(mesh=Mesh(2, 3))
        initial = Mapping.random(cwg.cores, 6, rng=1)
        serial = ExhaustiveSearch().search(cwm_objective(cwg, platform), initial)
        pooled = ExhaustiveSearch(batch_size=64, backend=pool).search(
            cwm_objective(cwg, platform), initial
        )
        assert pooled.best_cost == serial.best_cost
        assert pooled.best_mapping == serial.best_mapping
        assert pooled.evaluations == serial.evaluations
        assert pooled.history == serial.history

    def test_multi_restart_sa_independent_of_backend(self, workload, pool):
        _, cwg, platform = workload
        initial = Mapping.random(cwg.cores, 16, rng=8)
        serial = SimulatedAnnealing(FAST_SCHEDULE, restarts=3).search(
            cwm_objective(cwg, platform), initial, rng=17
        )
        pooled = SimulatedAnnealing(FAST_SCHEDULE, restarts=3, backend=pool).search(
            cwm_objective(cwg, platform), initial, rng=17
        )
        assert pooled.best_cost == serial.best_cost
        assert pooled.best_mapping == serial.best_mapping
        assert pooled.evaluations == serial.evaluations
        assert pooled.history == serial.history
        assert pooled.accepted_moves == serial.accepted_moves

    def test_multi_restart_returns_best_of_its_restarts(self, workload):
        from repro.search.annealing import _run_restart
        from repro.utils.rng import ensure_rng, spawn_seeds

        _, cwg, platform = workload
        initial = Mapping.random(cwg.cores, 16, rng=8)
        multi = SimulatedAnnealing(FAST_SCHEDULE, restarts=4).search(
            cwm_objective(cwg, platform), initial, rng=17
        )
        seeds = spawn_seeds(ensure_rng(17), 4)
        singles = [
            _run_restart(FAST_SCHEDULE, True, cwm_objective(cwg, platform), initial, seed, index > 0)
            for index, seed in enumerate(seeds)
        ]
        assert multi.best_cost == min(result.best_cost for result in singles)
        assert multi.evaluations == sum(result.evaluations for result in singles)

    def test_sa_restart_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(restarts=0)
        with pytest.raises(ConfigurationError):
            GeneticParameters(n_workers=0)
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch(batch_size=0)


class TestRouteTableWarmup:
    def test_serial_and_sharded_tables_identical(self, pool):
        platform = Platform(mesh=Torus(5, 4))
        reference = RouteTable.for_platform(platform, precompute=True)
        sharded = warm_route_table(platform, backend=pool, register=False)
        n = platform.num_tiles
        for source in range(n):
            for target in range(n):
                assert sharded.path(source, target) == reference.path(source, target)
                assert sharded.bit_energy(source, target) == reference.bit_energy(
                    source, target
                )
        assert sharded.is_precomputed

    def test_warmup_registers_shared_table(self, pool):
        platform = Platform(mesh=Mesh(5, 5))
        clear_route_table_cache()
        try:
            table = warm_route_table(platform, backend=pool)
            assert get_route_table(platform) is table
        finally:
            clear_route_table_cache()

    def test_register_rejects_mismatched_table(self):
        table = RouteTable.for_platform(Platform(mesh=Mesh(2, 2)))
        with pytest.raises(ConfigurationError):
            register_route_table(Platform(mesh=Mesh(3, 3)), table)

    def test_from_tables_validates_lengths(self):
        platform = Platform(mesh=Mesh(2, 2))
        with pytest.raises(ConfigurationError):
            RouteTable.from_tables(
                platform.mesh,
                platform.routing,
                platform.technology,
                True,
                [],
                [],
                [],
                [],
            )


class TestComparisonNeverPools:
    def test_comparison_config_paths_stay_serial(self, monkeypatch, example_cdcg, example_platform):
        """The Table 1/2 reproduction pipeline must never engage a pool.

        ``ComparisonConfig`` pins ``use_delta=False`` for bit-stable rows; by
        the same logic its searches must stay single-process.  Poisoning the
        pool backend proves no code path constructs or uses one.
        """

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ComparisonConfig engaged ProcessPoolBackend")

        monkeypatch.setattr(ProcessPoolBackend, "__init__", forbidden)
        monkeypatch.setattr(ProcessPoolBackend, "evaluate", forbidden)
        monkeypatch.setattr(ProcessPoolBackend, "map", forbidden)
        config = ComparisonConfig(method="exhaustive")
        comparison = compare_models(example_cdcg, example_platform, config, seed=3)
        assert comparison.cwm_outcome.cost <= comparison.cdcm_outcome.cost * 10

    def test_framework_contexts_default_to_no_backend(self, example_cdcg, example_platform):
        from repro.core.framework import FRWFramework

        framework = FRWFramework(example_cdcg, example_platform)
        assert framework.evaluation_context("cwm").backend is None
        assert framework.evaluation_context("cdcm").backend is None


class TestBackendProtocol:
    def test_backend_map_default_is_serial(self):
        class Echo(BatchBackend):
            def evaluate(self, context, mappings):  # pragma: no cover - unused
                return []

        assert Echo().map(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_pool_map_matches_serial_map(self, pool):
        args = [(2, 5), (3, 3), (5, 2)]
        assert pool.map(pow, args) == [pow(*a) for a in args]

    def test_context_manager_closes_pool(self, workload):
        _, cwg, platform = workload
        context = CwmEvaluationContext(cwg, platform, cache_size=0)
        mappings = _random_mappings(cwg, 16, 8)
        with ProcessPoolBackend(n_workers=2, min_batch_size=2) as backend:
            backend.evaluate(context, mappings)
            assert backend._pool is not None
        assert backend._pool is None
