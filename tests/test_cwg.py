"""Communication weighted graph (repro.graphs.cwg)."""

import networkx as nx
import pytest

from repro.graphs.cwg import CWG, Communication, cwg_from_edges
from repro.utils.errors import GraphValidationError


@pytest.fixture
def simple_cwg() -> CWG:
    cwg = CWG("simple")
    cwg.add_communication("A", "B", 15)
    cwg.add_communication("B", "F", 40)
    cwg.add_communication("E", "A", 35)
    return cwg


class TestCommunication:
    def test_valid_edge(self):
        comm = Communication("A", "B", 10)
        assert comm.bits == 10

    def test_rejects_self_communication(self):
        with pytest.raises(GraphValidationError):
            Communication("A", "A", 10)

    def test_rejects_non_positive_bits(self):
        with pytest.raises(GraphValidationError):
            Communication("A", "B", 0)


class TestConstruction:
    def test_add_core_idempotent(self):
        cwg = CWG()
        cwg.add_core("A")
        cwg.add_core("A")
        assert cwg.cores == ["A"]

    def test_add_core_rejects_empty_name(self):
        with pytest.raises(GraphValidationError):
            CWG().add_core("")

    def test_add_communication_registers_cores(self, simple_cwg):
        assert set(simple_cwg.cores) == {"A", "B", "E", "F"}

    def test_repeated_edges_accumulate(self):
        cwg = CWG()
        cwg.add_communication("A", "B", 10)
        cwg.add_communication("A", "B", 5)
        assert cwg.weight("A", "B") == 15
        assert cwg.num_communications == 1


class TestInspection:
    def test_counts(self, simple_cwg):
        assert simple_cwg.num_cores == 4
        assert simple_cwg.num_communications == 3
        assert len(simple_cwg) == 4

    def test_weight_lookup(self, simple_cwg):
        assert simple_cwg.weight("B", "F") == 40

    def test_weight_missing_edge(self, simple_cwg):
        with pytest.raises(GraphValidationError):
            simple_cwg.weight("A", "F")

    def test_total_bits(self, simple_cwg):
        assert simple_cwg.total_bits() == 90

    def test_in_out_volume(self, simple_cwg):
        assert simple_cwg.out_volume("A") == 15
        assert simple_cwg.in_volume("A") == 35
        assert simple_cwg.out_volume("F") == 0

    def test_volume_unknown_core(self, simple_cwg):
        with pytest.raises(GraphValidationError):
            simple_cwg.out_volume("Z")

    def test_neighbours(self, simple_cwg):
        assert simple_cwg.neighbours("A") == ["B", "E"]

    def test_contains(self, simple_cwg):
        assert "A" in simple_cwg
        assert "Z" not in simple_cwg

    def test_has_communication(self, simple_cwg):
        assert simple_cwg.has_communication("A", "B")
        assert not simple_cwg.has_communication("B", "A")

    def test_communications_iteration(self, simple_cwg):
        edges = {(c.source, c.target, c.bits) for c in simple_cwg.communications()}
        assert edges == {("A", "B", 15), ("B", "F", 40), ("E", "A", 35)}


class TestValidationAndConversion:
    def test_validate_ok(self, simple_cwg):
        simple_cwg.validate()

    def test_validate_rejects_empty_graph(self):
        with pytest.raises(GraphValidationError):
            CWG("empty").validate()

    def test_to_networkx(self, simple_cwg):
        graph = simple_cwg.to_networkx()
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == 4
        assert graph.edges["A", "B"]["bits"] == 15

    def test_copy_is_independent(self, simple_cwg):
        clone = simple_cwg.copy()
        clone.add_communication("F", "E", 1)
        assert not simple_cwg.has_communication("F", "E")
        assert clone.has_communication("F", "E")

    def test_equality(self, simple_cwg):
        assert simple_cwg == simple_cwg.copy()
        other = simple_cwg.copy()
        other.add_communication("A", "B", 1)
        assert simple_cwg != other

    def test_unhashable(self, simple_cwg):
        with pytest.raises(TypeError):
            hash(simple_cwg)

    def test_repr_mentions_counts(self, simple_cwg):
        text = repr(simple_cwg)
        assert "cores=4" in text
        assert "communications=3" in text


class TestFromEdges:
    def test_builds_graph(self):
        cwg = cwg_from_edges("x", [("A", "B", 1), ("B", "C", 2)])
        assert cwg.num_cores == 3
        assert cwg.weight("B", "C") == 2

    def test_isolated_cores_registered(self):
        cwg = cwg_from_edges("x", [("A", "B", 1)], cores=["D"])
        assert "D" in cwg
