"""End-to-end integration tests across modules.

These exercise the full pipeline the way a user (or the benchmark harness)
does: workload generation -> framework -> search -> CDCM evaluation ->
comparison metrics, and serialisation round trips of whole applications.
"""

import pytest

from repro import (
    FRWFramework,
    Mapping,
    Mesh,
    NocParameters,
    Platform,
    TECH_0_07UM,
    TECH_0_35UM,
    compare_models,
)
from repro.analysis.comparison import ComparisonConfig
from repro.graphs.io import load_cdcg_json, save_json
from repro.search.annealing import AnnealingSchedule
from repro.search.exhaustive import ExhaustiveSearch
from repro.workloads.embedded import fft8, image_encoder
from repro.workloads.paper_example import paper_example_cdcg, paper_example_platform
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

FAST = AnnealingSchedule(cooling_factor=0.85, max_evaluations=500, stall_plateaus=6)


class TestPaperExampleEndToEnd:
    def test_cdcm_search_finds_a_mapping_at_least_as_good_as_figure_3d(self):
        framework = FRWFramework(paper_example_cdcg(), paper_example_platform())
        outcome = framework.map(model="cdcm", method="exhaustive", seed=0)
        report = framework.evaluate(outcome.mapping)
        assert report.total_energy <= 399.0 + 1e-9
        assert report.execution_time <= 90.0 + 1e-9

    def test_cwm_search_cannot_see_the_difference(self):
        framework = FRWFramework(paper_example_cdcg(), paper_example_platform())
        outcome = framework.map(model="cwm", method="exhaustive", seed=0)
        # any CWM optimum has the example's minimal dynamic energy
        assert outcome.cost == pytest.approx(390.0)


class TestEmbeddedApplicationFlow:
    def test_fft8_mapping_on_3x3(self):
        cdcg = fft8()
        platform = Platform(mesh=Mesh(3, 3))
        framework = FRWFramework(cdcg, platform)
        from repro.search.annealing import SimulatedAnnealing

        outcome = framework.map(
            model="cdcm", searcher=SimulatedAnnealing(FAST), seed=4
        )
        random_report = framework.evaluate(framework.initial_mapping(99))
        searched_report = framework.evaluate(outcome.mapping)
        assert searched_report.total_energy <= random_report.total_energy

    def test_image_encoder_greedy_vs_random(self):
        cdcg = image_encoder()
        platform = Platform(mesh=Mesh(3, 3))
        framework = FRWFramework(cdcg, platform)
        greedy_cost = framework.evaluate_cwm_cost(framework.greedy_mapping())
        random_costs = [
            framework.evaluate_cwm_cost(framework.initial_mapping(seed))
            for seed in range(5)
        ]
        assert greedy_cost <= max(random_costs)

    def test_evaluation_is_consistent_across_technologies(self):
        cdcg = fft8()
        platform = Platform(mesh=Mesh(3, 3))
        framework = FRWFramework(cdcg, platform)
        mapping = framework.initial_mapping(1)
        report_07 = framework.evaluate(mapping, TECH_0_07UM)
        report_35 = framework.evaluate(mapping, TECH_0_35UM)
        # timing identical, energy pricing different
        assert report_07.execution_time == pytest.approx(report_35.execution_time)
        assert report_07.total_energy != pytest.approx(report_35.total_energy)


class TestGeneratedBenchmarkFlow:
    def test_serialisation_round_trip_preserves_schedule(self, tmp_path):
        spec = TgffSpec("roundtrip", num_cores=5, num_packets=12, total_bits=4_000)
        cdcg = TgffLikeGenerator(3).generate(spec)
        path = tmp_path / "bench.json"
        save_json(cdcg, path)
        restored = load_cdcg_json(path)

        platform = Platform(mesh=Mesh(2, 3))
        mapping = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
        original_report = FRWFramework(cdcg, platform).evaluate(mapping)
        restored_report = FRWFramework(restored, platform).evaluate(mapping)
        assert restored_report.execution_time == pytest.approx(
            original_report.execution_time
        )
        assert restored_report.total_energy == pytest.approx(
            original_report.total_energy
        )

    def test_comparison_pipeline_on_generated_benchmark(self):
        spec = TgffSpec("pipeline", num_cores=6, num_packets=20, total_bits=8_000)
        cdcg = TgffLikeGenerator(11).generate(spec)
        platform = Platform(mesh=Mesh(3, 2))
        config = ComparisonConfig(annealing_schedule=FAST)
        comparison = compare_models(cdcg, platform, config, seed=2)
        assert comparison.noc_label == "3 x 2"
        assert comparison.cwm_mapping_time > 0
        assert comparison.cdcm_mapping_time > 0
        assert len(comparison.technology_results) == 2

    def test_exhaustive_and_annealing_agree_on_tiny_benchmark(self):
        spec = TgffSpec("tiny", num_cores=4, num_packets=8, total_bits=2_000)
        cdcg = TgffLikeGenerator(5).generate(spec)
        platform = Platform(mesh=Mesh(2, 2))
        framework = FRWFramework(cdcg, platform)
        exhaustive = framework.map(model="cdcm", method="exhaustive", seed=1)
        annealed = framework.map(
            model="cdcm",
            searcher=None,
            method="annealing",
            seed=1,
            schedule=AnnealingSchedule(cooling_factor=0.9, max_evaluations=2_000),
        )
        assert annealed.cost == pytest.approx(exhaustive.cost, rel=0.05)

    def test_wide_flits_shorten_execution(self):
        spec = TgffSpec("flits", num_cores=5, num_packets=15, total_bits=50_000)
        cdcg = TgffLikeGenerator(9).generate(spec)
        mapping = Mapping.random(cdcg.cores(), 6, rng=0)
        narrow = Platform(mesh=Mesh(3, 2), parameters=NocParameters(flit_width=8))
        wide = Platform(mesh=Mesh(3, 2), parameters=NocParameters(flit_width=64))
        narrow_report = FRWFramework(cdcg, narrow).evaluate(mapping)
        wide_report = FRWFramework(cdcg, wide).evaluate(mapping)
        assert wide_report.execution_time < narrow_report.execution_time
