"""Bounded-repair CDCM deltas (repro.eval.repair): conformance and wiring.

The contract under test has three layers:

* **subset identity** — ``CdcmScheduler.schedule_subset`` over the whole
  application with no floors and no background must be bit-identical to
  ``schedule`` (same grant order, same arithmetic): the partial replay is a
  restriction of the full one, not a second scheduler;
* **delta conformance** — walking random swap sequences, the running sum
  ``cost0 + sum(deltas)`` must match a full recompute exactly at every
  resync point and whenever the engine claims a step exact, and stay within
  the policy's drift bound in between (the shared harness of
  ``tests/delta_harness.py``, fuzzed over 100+ seeded sequences and over
  mesh / torus / irregular fabrics);
* **gating** — the paper-reproduction comparison pipeline must never enter
  the repair path (mirroring the never-vectorises and never-pools
  regressions), and the ``repair`` gate plus policy must survive a context
  pickle round trip into ``ProcessPoolBackend`` workers.
"""

from __future__ import annotations

import pickle
import random

import pytest

from delta_harness import check_delta_conformance, random_swaps
from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.core.cdcm import CdcmEvaluator
from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective
from repro.eval.context import CdcmEvaluationContext
from repro.eval.repair import (
    DEFAULT_REPAIR,
    CdcmRepairEngine,
    RepairPolicy,
)
from repro.noc.platform import Platform
from repro.noc.scheduler import CdcmScheduler, contention_index
from repro.noc.topology import IrregularTopology, Mesh, Torus
from repro.search.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.utils.errors import ConfigurationError, MappingError
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec


def _fabric8() -> IrregularTopology:
    """An 8-tile irregular fabric: a 4-ring with a 4-tile spur mesh."""
    return IrregularTopology(
        [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (1, 4),
            (4, 5),
            (5, 2),
            (4, 6),
            (6, 7),
            (7, 5),
        ],
        name="repair-fabric8",
    )


#: The three fabric families the conformance sweep covers.
FABRICS = {
    "mesh": lambda: Platform(mesh=Mesh(4, 4)),
    "torus": lambda: Platform(mesh=Torus(4, 4)),
    "irregular": lambda: Platform(mesh=_fabric8(), routing="table"),
}


def _workload(num_cores: int, num_packets: int, seed: int = 7):
    spec = TgffSpec(
        name=f"repair-{num_cores}c{num_packets}p",
        num_cores=num_cores,
        num_packets=num_packets,
        total_bits=num_packets * 2_048,
    )
    return TgffLikeGenerator(seed).generate(spec)


def _identity_mapping(cdcg, platform: Platform) -> Mapping:
    cores = sorted(cdcg.cores())
    return Mapping(
        {core: tile for tile, core in enumerate(cores)}, platform.num_tiles
    )


# ---------------------------------------------------------------------------
# Subset replay identity
# ---------------------------------------------------------------------------
class TestSubsetReplayIdentity:
    @pytest.mark.parametrize("fabric", sorted(FABRICS), ids=sorted(FABRICS))
    def test_full_subset_is_bit_identical_to_schedule(self, fabric):
        platform = FABRICS[fabric]()
        cdcg = _workload(num_cores=6, num_packets=20)
        mapping = _identity_mapping(cdcg, platform)
        scheduler = CdcmScheduler(platform)
        full = scheduler.schedule(cdcg, mapping)
        tile_of = {core: mapping.tile_of(core) for core in cdcg.cores()}
        sub = scheduler.schedule_subset(
            cdcg, tile_of, [p.name for p in cdcg.packets]
        )
        assert set(sub.schedules) == set(full.packet_schedules)
        for name, schedule in sub.schedules.items():
            reference = full.packet_schedules[name]
            assert schedule.ready_time == reference.ready_time
            assert schedule.injection_time == reference.injection_time
            assert schedule.delivery_time == reference.delivery_time
            assert schedule.contention_delay == reference.contention_delay
            assert schedule.path == reference.path
        # Footprints must reproduce the full replay's contention index.
        serialize_local = platform.parameters.serialize_local_links
        index = contention_index(full, serialize_local)
        rebuilt = {}
        for name, footprint in sub.footprints.items():
            for resource, occupation in footprint:
                rebuilt.setdefault(resource, []).append(occupation)
        for resource, occupations in rebuilt.items():
            occupations.sort(key=lambda o: o.start)
        assert rebuilt == index


# ---------------------------------------------------------------------------
# Policy validation and basic engine behaviour
# ---------------------------------------------------------------------------
class TestRepairPolicy:
    def test_defaults_are_valid(self):
        policy = RepairPolicy()
        assert policy.resync_every >= 1
        assert policy.max_drift >= 0
        assert DEFAULT_REPAIR is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"resync_every": 0},
            {"resync_every": -3},
            {"max_drift": -0.1},
            {"closure_depth": -1},
            {"max_replay_fraction": -0.01},
            {"max_replay_fraction": 1.5},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            RepairPolicy(**kwargs)


class TestRepairEngine:
    @pytest.fixture
    def setup(self):
        platform = Platform(mesh=Mesh(4, 4))
        cdcg = _workload(num_cores=8, num_packets=24)
        engine = CdcmRepairEngine(cdcg, platform)
        mapping = _identity_mapping(cdcg, platform)
        return cdcg, platform, engine, mapping

    def test_same_tile_swap_prices_zero(self, setup):
        _, _, engine, mapping = setup
        delta = engine.metric_delta(mapping, 2, 2)
        assert tuple(delta.values) == (0.0, 0.0, 0.0, 0.0, 0.0)
        assert engine.last_outcome.exact

    def test_empty_empty_swap_prices_zero(self, setup):
        cdcg, platform, engine, mapping = setup
        occupied = {mapping.tile_of(core) for core in cdcg.cores()}
        empty = sorted(set(range(platform.num_tiles)) - occupied)
        assert len(empty) >= 2
        delta = engine.metric_delta(mapping, empty[0], empty[1])
        assert tuple(delta.values) == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_out_of_range_tile_raises(self, setup):
        _, _, engine, mapping = setup
        with pytest.raises(MappingError):
            engine.metric_delta(mapping, 0, 99)

    def test_first_delta_anchors_then_promotes(self, setup):
        cdcg, platform, engine, mapping = setup
        evaluator = CdcmEvaluator(platform)
        delta = engine.metric_delta(mapping, 0, 5)
        assert engine.stats.anchors == 1
        swapped = mapping.swap_tiles(0, 5)
        truth = evaluator.metrics(cdcg, swapped)
        base = evaluator.metrics(cdcg, mapping)
        if engine.last_outcome.exact:
            assert delta["energy"] == pytest.approx(
                truth["energy"] - base["energy"], rel=1e-9
            )
        # Accept-and-continue: the next delta against the swapped mapping
        # splices the candidate instead of re-anchoring.
        engine.metric_delta(swapped, 1, 2)
        assert engine.stats.anchors == 1
        assert engine.stats.promotions == 1

    def test_tracked_metrics_follow_accepted_swaps(self, setup):
        _, _, engine, mapping = setup
        assert engine.tracked_metrics() is None
        engine.metric_delta(mapping, 0, 5)
        engine.metric_delta(mapping.swap_tiles(0, 5), 1, 2)
        tracked = engine.tracked_metrics()
        assert tracked is not None and tracked["energy"] > 0


# ---------------------------------------------------------------------------
# Delta conformance: fabrics sweep + seeded fuzz
# ---------------------------------------------------------------------------
class TestRepairConformance:
    @pytest.mark.parametrize("fabric", sorted(FABRICS), ids=sorted(FABRICS))
    def test_conformance_across_fabrics(self, fabric):
        platform = FABRICS[fabric]()
        cdcg = _workload(num_cores=6, num_packets=20)
        evaluator = CdcmEvaluator(platform)
        policy = RepairPolicy(resync_every=8, max_drift=0.05)
        engine = CdcmRepairEngine(cdcg, platform, policy=policy)
        report = check_delta_conformance(
            cost=lambda m: evaluator.metrics(cdcg, m)["energy"],
            delta=lambda m, a, b: engine.metric_delta(m, a, b)["energy"],
            initial=_identity_mapping(cdcg, platform),
            swaps=random_swaps(platform.num_tiles, 48, random.Random(13)),
            exact_rel=1e-9,
            bounded_rel=0.3,
            outcome=lambda: engine.last_outcome,
            label=f"cdcm-repair[{fabric}]",
        )
        assert report.steps == 48
        # resync_every=8 over 48 accepted swaps forces several resyncs, so
        # the exact regime must actually be exercised (the resync guarantee).
        assert engine.stats.resyncs + engine.stats.forced_resyncs >= 3
        assert report.exact_steps > 0

    def test_fuzz_100_seeded_swap_sequences(self):
        # The acceptance-criteria fuzz: >= 100 seeded random swap sequences
        # with zero bound violations (check_delta_conformance asserts).
        platform = Platform(mesh=Mesh(4, 4))
        cdcg = _workload(num_cores=8, num_packets=24)
        evaluator = CdcmEvaluator(platform)
        truth_cache: dict = {}

        def truth(mapping):
            key = tuple(sorted(mapping.assignments().items()))
            if key not in truth_cache:
                truth_cache[key] = evaluator.metrics(cdcg, mapping)["energy"]
            return truth_cache[key]

        initial = _identity_mapping(cdcg, platform)
        for seed in range(100):
            engine = CdcmRepairEngine(
                cdcg,
                platform,
                policy=RepairPolicy(resync_every=6, max_drift=0.1),
            )
            check_delta_conformance(
                cost=truth,
                delta=lambda m, a, b: engine.metric_delta(m, a, b)["energy"],
                initial=initial,
                swaps=random_swaps(
                    platform.num_tiles, 10, random.Random(1000 + seed)
                ),
                exact_rel=1e-9,
                bounded_rel=0.3,
                outcome=lambda: engine.last_outcome,
                label=f"fuzz[{seed}]",
            )


@pytest.mark.slow
class TestRepairAnnealingFuzz:
    """Nightly-style sweep: repair-path annealing vs full-replay annealing."""

    @pytest.mark.parametrize("fabric", sorted(FABRICS), ids=sorted(FABRICS))
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_final_costs_agree_within_drift(self, fabric, seed):
        platform = FABRICS[fabric]()
        cdcg = _workload(num_cores=6, num_packets=20, seed=seed)
        schedule = AnnealingSchedule(
            max_evaluations=1_500, moves_per_temperature=64
        )
        initial = _identity_mapping(cdcg, platform)
        results = {}
        for repair in (False, True):
            context = CdcmEvaluationContext(cdcg, platform, repair=repair)
            objective = cdcm_objective(cdcg, platform, context=context)
            searcher = SimulatedAnnealing(schedule, use_delta=True)
            results[repair] = searcher.search(objective, initial, rng=seed)
        full_cost = results[False].best_cost
        repair_cost = results[True].best_cost
        # Different walks (bounded deltas can flip borderline accepts), but
        # the two searches must land in the same cost neighbourhood, and
        # every reported best must be a true full-replay cost.
        evaluator = CdcmEvaluator(platform)
        for repair, result in results.items():
            recomputed = evaluator.metrics(cdcg, result.best_mapping)["energy"]
            assert result.best_cost == pytest.approx(recomputed, rel=1e-6)
        assert repair_cost <= full_cost * 1.25
        assert full_cost <= repair_cost * 1.25


# ---------------------------------------------------------------------------
# Gating: the comparison pipeline and pickling
# ---------------------------------------------------------------------------
class TestComparisonNeverRepairs:
    def test_comparison_config_pins_gate_off(self):
        assert ComparisonConfig().repair is False

    def test_comparison_paths_never_enter_repair(
        self, monkeypatch, example_cdcg, example_platform
    ):
        """The Table 1/2 reproduction pipeline must never price via repair.

        Poisoning the engine's entry points proves no comparison code path
        constructs or consults one — the rows stay full-replay priced and
        byte-identical to the pre-repair pipeline (mirrors
        ``TestComparisonNeverVectorises``).
        """

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ComparisonConfig engaged CdcmRepairEngine")

        monkeypatch.setattr(CdcmRepairEngine, "__init__", forbidden)
        monkeypatch.setattr(CdcmRepairEngine, "metric_delta", forbidden)
        config = ComparisonConfig(
            annealing_schedule=AnnealingSchedule(
                max_evaluations=60, moves_per_temperature=10
            )
        )
        comparison = compare_models(
            example_cdcg, example_platform, config, seed=3
        )
        assert comparison.cdcm_outcome.cost > 0

    def test_repair_config_engages_engine(
        self, example_cdcg, example_platform
    ):
        # The inverse guard: flipping the knob on really changes the path.
        config = ComparisonConfig(
            use_delta=True,
            repair=True,
            annealing_schedule=AnnealingSchedule(
                max_evaluations=60, moves_per_temperature=10
            ),
        )
        comparison = compare_models(
            example_cdcg, example_platform, config, seed=3
        )
        assert comparison.cdcm_outcome.cost > 0


class TestRepairPickling:
    def test_gate_and_policy_survive_round_trip(self):
        platform = Platform(mesh=Mesh(4, 4))
        cdcg = _workload(num_cores=8, num_packets=24)
        policy = RepairPolicy(resync_every=5, max_drift=0.2, closure_depth=1)
        context = CdcmEvaluationContext(
            cdcg, platform, repair=True, repair_policy=policy
        )
        mapping = _identity_mapping(cdcg, platform)
        first = context.metric_delta(mapping, 0, 5)
        assert context._repair_engine is not None  # engine state exists...
        clone = pickle.loads(pickle.dumps(context))
        # ...the gate and policy travel, the engine state does not.
        assert clone.repair is True
        assert clone.repair_policy == policy
        assert clone._repair_engine is None
        assert clone.supports_metric_delta
        # An unpickled worker re-anchors and prices the same swap the same.
        assert tuple(clone.metric_delta(mapping, 0, 5).values) == tuple(
            first.values
        )
        assert clone._repair_engine.policy == policy

    def test_pinned_off_clone_stays_off(self):
        platform = Platform(mesh=Mesh(4, 4))
        cdcg = _workload(num_cores=8, num_packets=24)
        context = CdcmEvaluationContext(cdcg, platform, repair=False)
        clone = pickle.loads(pickle.dumps(context))
        assert clone.repair is False
        assert not clone.supports_delta
        with pytest.raises(NotImplementedError):
            clone.delta(_identity_mapping(cdcg, platform), 0, 1)
