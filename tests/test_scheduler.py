"""Contention-aware CDCG scheduler (repro.noc.scheduler)."""

import pytest

from repro.core.mapping import Mapping
from repro.graphs.cdcg import CDCG
from repro.noc.platform import NocParameters, Platform
from repro.noc.resources import LinkResource, LocalLinkResource, RouterResource
from repro.noc.scheduler import CdcmScheduler, ScheduleResult
from repro.noc.topology import Mesh
from repro.timing.delays import total_packet_delay
from repro.utils.errors import MappingError, SchedulingError


def _simple_platform(**params) -> Platform:
    return Platform(
        mesh=Mesh(2, 2),
        parameters=NocParameters(
            routing_cycles=2, link_cycles=1, clock_period=1.0, flit_width=1, **params
        ),
    )


class TestSinglePacket:
    def test_delivery_matches_equation8(self):
        cdcg = CDCG("one")
        cdcg.add_packet("p", "a", "b", computation_time=5.0, bits=10)
        platform = _simple_platform()
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(cdcg, mapping)
        schedule = result.schedule("p")
        expected_delay = total_packet_delay(platform.parameters, hop_count=2, num_flits=10)
        assert schedule.injection_time == pytest.approx(5.0)
        assert schedule.delivery_time == pytest.approx(5.0 + expected_delay)
        assert schedule.contention_delay == 0.0
        assert result.execution_time == pytest.approx(schedule.delivery_time)

    def test_longer_route_is_slower(self):
        cdcg = CDCG("one")
        cdcg.add_packet("p", "a", "b", computation_time=0.0, bits=8)
        platform = _simple_platform()
        near = CdcmScheduler(platform).schedule(
            cdcg, Mapping({"a": 0, "b": 1}, num_tiles=4)
        )
        far = CdcmScheduler(platform).schedule(
            cdcg, Mapping({"a": 0, "b": 3}, num_tiles=4)
        )
        assert far.execution_time > near.execution_time

    def test_flit_width_reduces_delay(self):
        cdcg = CDCG("one")
        cdcg.add_packet("p", "a", "b", computation_time=0.0, bits=64)
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        narrow = CdcmScheduler(_simple_platform()).schedule(cdcg, mapping)
        wide_platform = Platform(
            mesh=Mesh(2, 2),
            parameters=NocParameters(routing_cycles=2, link_cycles=1, flit_width=32),
        )
        wide = CdcmScheduler(wide_platform).schedule(cdcg, mapping)
        assert wide.execution_time < narrow.execution_time
        assert wide.schedule("p").num_flits == 2

    def test_zero_computation_time(self):
        cdcg = CDCG("one")
        cdcg.add_packet("p", "a", "b", computation_time=0.0, bits=4)
        result = CdcmScheduler(_simple_platform()).schedule(
            cdcg, Mapping({"a": 0, "b": 1}, num_tiles=4)
        )
        assert result.schedule("p").injection_time == 0.0


class TestDependences:
    def test_chain_is_serialised(self, linear_cdcg):
        platform = Platform(mesh=Mesh(2, 2))
        mapping = Mapping({"a": 0, "b": 1, "c": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(linear_cdcg, mapping)
        p0 = result.schedule("p0")
        p1 = result.schedule("p1")
        p2 = result.schedule("p2")
        assert p1.ready_time == pytest.approx(p0.delivery_time)
        assert p1.injection_time == pytest.approx(p0.delivery_time + 3.0)
        assert p2.ready_time == pytest.approx(p1.delivery_time)
        assert result.execution_time == pytest.approx(p2.delivery_time)

    def test_join_waits_for_slowest_predecessor(self, fork_join_cdcg):
        platform = Platform(mesh=Mesh(2, 2))
        mapping = Mapping({"src": 0, "x": 1, "y": 2, "sink": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(fork_join_cdcg, mapping)
        done = result.schedule("done")
        xout = result.schedule("xout")
        yout = result.schedule("yout")
        assert done.ready_time == pytest.approx(
            max(xout.delivery_time, yout.delivery_time)
        )

    def test_execution_time_at_least_critical_path(self, fork_join_cdcg):
        platform = Platform(mesh=Mesh(2, 2))
        mapping = Mapping({"src": 0, "x": 1, "y": 2, "sink": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(fork_join_cdcg, mapping)
        assert result.execution_time >= fork_join_cdcg.critical_path_time()


class TestContention:
    def _contention_cdcg(self) -> CDCG:
        """Two simultaneous packets that share the link tau0 -> tau2 when the
        sources sit at tiles 1 and 0 and both targets sit at tile 2."""
        cdcg = CDCG("contend")
        cdcg.add_packet("blocker", "b", "f", computation_time=0.0, bits=40)
        cdcg.add_packet("victim", "a", "f2", computation_time=0.0, bits=15)
        return cdcg

    def test_shared_link_serialises_packets(self):
        # Both flows need link tau0->tau2 under XY routing; they cannot
        # overlap there, so one of them must be delayed.
        cdcg = CDCG("contend")
        cdcg.add_packet("blocker", "b", "f", computation_time=0.0, bits=40)
        cdcg.add_packet("victim", "a", "f", computation_time=1.0, bits=15)
        platform = _simple_platform()
        mapping = Mapping({"b": 0, "a": 1, "f": 2}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(cdcg, mapping)
        blocker = result.schedule("blocker")
        victim = result.schedule("victim")
        assert blocker.contention_delay == 0.0
        assert victim.contention_delay > 0.0
        link_occupations = result.link_occupations(0, 2)
        assert len(link_occupations) == 2
        first, second = link_occupations
        assert first.end <= second.start

    def test_no_contention_on_disjoint_routes(self):
        cdcg = CDCG("disjoint")
        cdcg.add_packet("p1", "a", "b", computation_time=0.0, bits=20)
        cdcg.add_packet("p2", "c", "d", computation_time=0.0, bits=20)
        platform = _simple_platform()
        mapping = Mapping({"a": 0, "b": 1, "c": 2, "d": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(cdcg, mapping)
        assert result.total_contention_delay() == 0.0
        assert result.contended_packets() == []

    def test_contention_report_lists_victim(self):
        cdcg = CDCG("contend")
        cdcg.add_packet("blocker", "b", "f", computation_time=0.0, bits=40)
        cdcg.add_packet("victim", "a", "f", computation_time=1.0, bits=15)
        platform = _simple_platform()
        mapping = Mapping({"b": 0, "a": 1, "f": 2}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(cdcg, mapping)
        assert result.contended_packets() == ["victim"]

    def test_serialize_local_links_option_adds_delay(self):
        # Two packets delivered to the same core at the same time: with local
        # links serialised the second one is delayed further.
        cdcg = CDCG("eject")
        cdcg.add_packet("p1", "a", "f", computation_time=0.0, bits=30)
        cdcg.add_packet("p2", "b", "f", computation_time=0.0, bits=30)
        mapping = Mapping({"a": 1, "b": 3, "f": 2}, num_tiles=4)
        relaxed = CdcmScheduler(_simple_platform()).schedule(cdcg, mapping)
        strict = CdcmScheduler(
            _simple_platform(serialize_local_links=True)
        ).schedule(cdcg, mapping)
        assert strict.execution_time >= relaxed.execution_time


class TestResourceBookkeeping:
    def test_occupations_cover_route(self, linear_cdcg):
        platform = _simple_platform()
        mapping = Mapping({"a": 0, "b": 1, "c": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(linear_cdcg, mapping)
        # p0 goes 0 -> 1: local(0), router(0), link(0,1), router(1), local(1)
        assert any(o.packet == "p0" for o in result.local_link_occupations(0))
        assert any(o.packet == "p0" for o in result.router_occupations(0))
        assert any(o.packet == "p0" for o in result.link_occupations(0, 1))
        assert any(o.packet == "p0" for o in result.router_occupations(1))
        assert any(o.packet == "p0" for o in result.local_link_occupations(1))

    def test_bits_through_resources(self, linear_cdcg):
        platform = _simple_platform()
        mapping = Mapping({"a": 0, "b": 1, "c": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(linear_cdcg, mapping)
        # Each packet crosses hop_count routers and hop_count-1 links.
        expected_router_bits = sum(
            s.packet.bits * s.hop_count for s in result.packet_schedules.values()
        )
        expected_link_bits = sum(
            s.packet.bits * (s.hop_count - 1)
            for s in result.packet_schedules.values()
        )
        assert result.bits_through_routers() == expected_router_bits
        assert result.bits_through_links() == expected_link_bits
        assert result.bits_through_local_links() == 2 * sum(
            p.bits for p in linear_cdcg.packets
        )

    def test_max_link_utilisation_between_zero_and_one(self, fork_join_cdcg):
        platform = _simple_platform()
        mapping = Mapping({"src": 0, "x": 1, "y": 2, "sink": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(fork_join_cdcg, mapping)
        assert 0.0 < result.max_link_utilisation() <= 1.0

    def test_schedule_lookup_error(self, linear_cdcg):
        platform = _simple_platform()
        mapping = Mapping({"a": 0, "b": 1, "c": 3}, num_tiles=4)
        result = CdcmScheduler(platform).schedule(linear_cdcg, mapping)
        with pytest.raises(SchedulingError):
            result.schedule("does-not-exist")


class TestMappingValidation:
    def test_missing_core(self, linear_cdcg):
        platform = _simple_platform()
        with pytest.raises(MappingError):
            CdcmScheduler(platform).schedule(
                linear_cdcg, Mapping({"a": 0, "b": 1}, num_tiles=4)
            )

    def test_duplicate_tile(self, linear_cdcg):
        platform = _simple_platform()
        with pytest.raises(MappingError):
            CdcmScheduler(platform).schedule(
                linear_cdcg, {"a": 0, "b": 0, "c": 1}
            )

    def test_tile_outside_mesh(self, linear_cdcg):
        platform = _simple_platform()
        with pytest.raises(MappingError):
            CdcmScheduler(platform).schedule(
                linear_cdcg, {"a": 0, "b": 1, "c": 9}
            )

    def test_plain_dict_mapping_accepted(self, linear_cdcg):
        platform = _simple_platform()
        result = CdcmScheduler(platform).schedule(
            linear_cdcg, {"a": 0, "b": 1, "c": 3}
        )
        assert result.execution_time > 0


class TestScheduleResultEdgeCases:
    """Degenerate-schedule behaviour of the ScheduleResult aggregates.

    The accessors are exercised throughout the suite on healthy schedules;
    these tests pin the corners — empty applications (``execution_time`` 0
    must not divide), single-packet schedules, and hand-built self-message
    results whose traffic never leaves the local links (impossible to reach
    through ``Packet``, which forbids ``source == target``, but reachable by
    downstream consumers that build results directly).
    """

    def test_empty_schedule_aggregates_are_zero(self):
        result = CdcmScheduler(_simple_platform()).schedule(CDCG("empty"), {})
        assert result.execution_time == 0.0
        assert result.max_link_utilisation() == 0.0  # no division by zero
        assert result.total_contention_delay() == 0.0
        assert result.contended_packets() == []
        assert result.bits_through_routers() == 0
        assert result.bits_through_links() == 0
        assert result.bits_through_local_links() == 0

    def test_absent_resources_give_empty_lists(self):
        result = CdcmScheduler(_simple_platform()).schedule(CDCG("empty"), {})
        assert result.resource_occupations(LinkResource(0, 1)) == []
        assert result.router_occupations(0) == []
        assert result.link_occupations(1, 3) == []
        assert result.local_link_occupations(2) == []

    def test_single_packet_utilisation_is_link_share(self):
        cdcg = CDCG("one")
        cdcg.add_packet("p", "a", "b", computation_time=5.0, bits=10)
        platform = _simple_platform()
        result = CdcmScheduler(platform).schedule(
            cdcg, Mapping({"a": 0, "b": 1}, num_tiles=4)
        )
        (occupation,) = result.link_occupations(0, 1)
        assert result.max_link_utilisation() == pytest.approx(
            occupation.duration / result.execution_time
        )
        assert 0.0 < result.max_link_utilisation() <= 1.0

    def test_self_message_result_has_zero_link_utilisation(self):
        # Packet forbids source == target, so a core messaging itself can
        # only appear in a hand-built result: traffic on the local link of
        # one tile, no inter-router hops.  Link utilisation must ignore it.
        from repro.noc.resources import Occupation

        result = ScheduleResult(
            application="self-loop",
            execution_time=20.0,
            packet_schedules={},
            occupations={
                LocalLinkResource(0): [
                    Occupation(packet="s0", bits=64, start=0.0, end=8.0),
                    Occupation(packet="s1", bits=64, start=8.0, end=16.0),
                ],
                RouterResource(0): [
                    Occupation(packet="s0", bits=64, start=0.0, end=8.0),
                ],
            },
        )
        assert result.max_link_utilisation() == 0.0
        assert result.bits_through_links() == 0
        assert result.bits_through_local_links() == 128
        assert result.bits_through_routers() == 64
        assert [o.packet for o in result.local_link_occupations(0)] == [
            "s0",
            "s1",
        ]

    def test_resource_occupations_sorted_by_start(self):
        from repro.noc.resources import Occupation

        result = ScheduleResult(
            application="unsorted",
            execution_time=10.0,
            packet_schedules={},
            occupations={
                LinkResource(0, 1): [
                    Occupation(packet="late", bits=1, start=6.0, end=8.0),
                    Occupation(packet="early", bits=1, start=1.0, end=3.0),
                ]
            },
        )
        assert [o.packet for o in result.resource_occupations(LinkResource(0, 1))] == [
            "early",
            "late",
        ]

    def test_schedule_lookup_on_empty_result_raises(self):
        result = ScheduleResult("empty", 0.0, {})
        with pytest.raises(SchedulingError):
            result.schedule("ghost")
