"""Unit-handling helpers (repro.utils.units)."""

import pytest

from repro.utils.units import (
    JOULE,
    MICROJOULE,
    MS,
    NANOJOULE,
    NS,
    PICOJOULE,
    S,
    US,
    bits_to_flits,
    format_energy,
    format_time,
)


class TestConstants:
    def test_time_constants_are_nanosecond_based(self):
        assert NS == 1.0
        assert US == 1e3
        assert MS == 1e6
        assert S == 1e9

    def test_energy_constants_are_picojoule_based(self):
        assert PICOJOULE == 1.0
        assert NANOJOULE == 1e3
        assert MICROJOULE == 1e6
        assert JOULE == 1e12


class TestFormatTime:
    def test_nanoseconds(self):
        assert format_time(12.345) == "12.35 ns"

    def test_microseconds(self):
        assert format_time(2_500) == "2.50 us"

    def test_milliseconds(self):
        assert format_time(3.2e6) == "3.20 ms"

    def test_seconds(self):
        assert format_time(1.5e9) == "1.50 s"

    def test_precision_parameter(self):
        assert format_time(1234.0, precision=0) == "1 us"


class TestFormatEnergy:
    def test_picojoules(self):
        assert format_energy(390.0) == "390.00 pJ"

    def test_nanojoules(self):
        assert format_energy(1.5e3) == "1.50 nJ"

    def test_microjoules(self):
        assert format_energy(2e6) == "2.00 uJ"

    def test_joules(self):
        assert format_energy(3e12) == "3.00 J"


class TestBitsToFlits:
    def test_exact_multiple(self):
        assert bits_to_flits(64, 32) == 2

    def test_rounds_up(self):
        assert bits_to_flits(65, 32) == 3

    def test_small_packet_takes_one_flit(self):
        assert bits_to_flits(1, 32) == 1

    def test_one_bit_flits_match_bit_count(self):
        # The paper's worked example uses one-bit flits.
        assert bits_to_flits(40, 1) == 40

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            bits_to_flits(0, 32)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            bits_to_flits(32, 0)
