"""Property-based tests (hypothesis) on the core data structures and models.

Invariants exercised here:

* routing — XY routes are minimal, mesh-adjacent and deterministic for any
  mesh size and tile pair;
* scheduling — for any generated CDCG and any valid mapping, packets are
  delivered after injection, dependences are respected, contention only ever
  delays packets, and no two packets overlap on a contention resource;
* energy — dynamic energy is invariant to the model (CWM vs CDCM) and total
  energy equation (10) decomposes exactly;
* mapping transformations — swaps preserve injectivity;
* graph conversion — the CWG collapse preserves total volume and the
  per-flow volumes;
* degraded fabrics — removing links/routers from certified mesh/torus pairs
  and re-validating never raises, and every rejection carries a witness that
  is a real channel-dependency-graph cycle.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.cdcm import CdcmEvaluator
from repro.core.cwm import CwmEvaluator
from repro.core.mapping import Mapping
from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import NocParameters, Platform
from repro.noc.resources import LinkResource
from repro.noc.routing import XYRouting, YXRouting
from repro.noc.scheduler import CdcmScheduler
from repro.noc.topology import Mesh
from repro.timing.delays import total_packet_delay

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

mesh_strategy = st.builds(
    Mesh,
    width=st.integers(min_value=2, max_value=5),
    height=st.integers(min_value=2, max_value=5),
)


@st.composite
def cdcg_strategy(draw, max_cores: int = 6, max_packets: int = 12):
    """Random acyclic CDCG with dependences pointing backwards in index order."""
    num_cores = draw(st.integers(min_value=2, max_value=max_cores))
    cores = [f"c{i}" for i in range(num_cores)]
    num_packets = draw(st.integers(min_value=1, max_value=max_packets))
    cdcg = CDCG("prop")
    for index in range(num_packets):
        source = draw(st.sampled_from(cores))
        target = draw(st.sampled_from([c for c in cores if c != source]))
        bits = draw(st.integers(min_value=1, max_value=500))
        computation = draw(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)
        )
        cdcg.add_packet(f"p{index}", source, target, computation, bits)
        if index > 0:
            for predecessor in draw(
                st.lists(
                    st.integers(min_value=0, max_value=index - 1),
                    max_size=2,
                    unique=True,
                )
            ):
                cdcg.add_dependence(f"p{predecessor}", f"p{index}")
    return cdcg


@st.composite
def cdcg_and_platform_and_mapping(draw):
    cdcg = draw(cdcg_strategy())
    cores = cdcg.cores()
    width = draw(st.integers(min_value=2, max_value=4))
    height = draw(st.integers(min_value=2, max_value=4))
    mesh = Mesh(width, height)
    if mesh.num_tiles < len(cores):
        mesh = Mesh(3, max(3, (len(cores) + 2) // 3))
    platform = Platform(
        mesh=mesh,
        parameters=NocParameters(
            flit_width=draw(st.sampled_from([1, 8, 32])),
        ),
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    mapping = Mapping.random(cores, platform.num_tiles, rng=seed)
    return cdcg, platform, mapping


SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Routing properties
# ---------------------------------------------------------------------------


class TestRoutingProperties:
    @given(mesh=mesh_strategy, data=st.data())
    @SETTINGS
    def test_xy_routes_are_minimal_and_adjacent(self, mesh, data):
        source = data.draw(st.integers(min_value=0, max_value=mesh.num_tiles - 1))
        target = data.draw(st.integers(min_value=0, max_value=mesh.num_tiles - 1))
        path = XYRouting().route(mesh, source, target)
        assert path[0] == source and path[-1] == target
        assert len(path) == mesh.manhattan_distance(source, target) + 1
        for a, b in zip(path, path[1:]):
            assert b in mesh.neighbours(a)
        assert len(set(path)) == len(path)  # no revisits

    @given(mesh=mesh_strategy, data=st.data())
    @SETTINGS
    def test_xy_and_yx_have_equal_length(self, mesh, data):
        source = data.draw(st.integers(min_value=0, max_value=mesh.num_tiles - 1))
        target = data.draw(st.integers(min_value=0, max_value=mesh.num_tiles - 1))
        assert len(XYRouting().route(mesh, source, target)) == len(
            YXRouting().route(mesh, source, target)
        )


# ---------------------------------------------------------------------------
# Scheduling properties
# ---------------------------------------------------------------------------


class TestSchedulingProperties:
    @given(case=cdcg_and_platform_and_mapping())
    @SETTINGS
    def test_schedule_invariants(self, case):
        cdcg, platform, mapping = case
        result = CdcmScheduler(platform).schedule(cdcg, mapping)

        assert result.execution_time >= cdcg.critical_path_time() - 1e-9
        for name, schedule in result.packet_schedules.items():
            packet = cdcg.packet(name)
            # injection after readiness + computation, delivery after injection
            assert schedule.injection_time == pytest.approx(
                schedule.ready_time + packet.computation_time
            )
            zero_load = total_packet_delay(
                platform.parameters, schedule.hop_count, schedule.num_flits
            )
            assert schedule.delivery_time == pytest.approx(
                schedule.injection_time + zero_load + schedule.contention_delay
            )
            assert schedule.contention_delay >= 0.0
            # dependences respected
            for predecessor in cdcg.predecessors(name):
                assert (
                    result.packet_schedules[predecessor].delivery_time
                    <= schedule.ready_time + 1e-9
                )

    @given(case=cdcg_and_platform_and_mapping())
    @SETTINGS
    def test_no_overlap_on_contention_resources(self, case):
        cdcg, platform, mapping = case
        result = CdcmScheduler(platform).schedule(cdcg, mapping)
        for resource, occupations in result.occupations.items():
            if not isinstance(resource, LinkResource):
                continue
            ordered = sorted(occupations, key=lambda o: o.start)
            for first, second in zip(ordered, ordered[1:]):
                assert first.end <= second.start + 1e-9

    @given(case=cdcg_and_platform_and_mapping())
    @SETTINGS
    def test_execution_time_bounded_by_serial_sum(self, case):
        cdcg, platform, mapping = case
        result = CdcmScheduler(platform).schedule(cdcg, mapping)
        serial_bound = sum(
            p.computation_time
            + total_packet_delay(
                platform.parameters,
                platform.hop_count(mapping.tile_of(p.source), mapping.tile_of(p.target)),
                platform.parameters.flits(p.bits),
            )
            for p in cdcg.packets
        )
        assert result.execution_time <= serial_bound + 1e-6


# ---------------------------------------------------------------------------
# Energy properties
# ---------------------------------------------------------------------------


class TestEnergyProperties:
    @given(case=cdcg_and_platform_and_mapping())
    @SETTINGS
    def test_cwm_and_cdcm_dynamic_energy_agree(self, case):
        cdcg, platform, mapping = case
        cwm = CwmEvaluator(platform).cost(cdcg_to_cwg(cdcg), mapping)
        report = CdcmEvaluator(platform).evaluate(cdcg, mapping)
        assert report.dynamic_energy == pytest.approx(cwm, rel=1e-9)

    @given(case=cdcg_and_platform_and_mapping())
    @SETTINGS
    def test_total_energy_decomposition(self, case):
        cdcg, platform, mapping = case
        report = CdcmEvaluator(platform).evaluate(cdcg, mapping)
        assert report.total_energy == pytest.approx(
            report.dynamic_energy + report.static_energy
        )
        assert report.static_energy == pytest.approx(
            platform.noc_static_power() * report.execution_time
        )


# ---------------------------------------------------------------------------
# Mapping and conversion properties
# ---------------------------------------------------------------------------


class TestMappingProperties:
    @given(
        num_cores=st.integers(min_value=1, max_value=10),
        num_tiles=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        swaps=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=8),
    )
    @SETTINGS
    def test_random_mapping_and_swaps_stay_injective(
        self, num_cores, num_tiles, seed, swaps
    ):
        if num_cores > num_tiles:
            num_cores = num_tiles
        cores = [f"c{i}" for i in range(num_cores)]
        mapping = Mapping.random(cores, num_tiles, rng=seed)
        for tile_a, tile_b in swaps:
            if tile_a < num_tiles and tile_b < num_tiles and tile_a != tile_b:
                mapping = mapping.swap_tiles(tile_a, tile_b)
        tiles = list(mapping.assignments().values())
        assert len(set(tiles)) == len(tiles)
        assert set(mapping.cores) == set(cores)


class TestConversionProperties:
    @given(cdcg=cdcg_strategy())
    @SETTINGS
    def test_collapse_preserves_volume(self, cdcg):
        cwg = cdcg_to_cwg(cdcg)
        assert cwg.total_bits() == cdcg.total_bits()
        for source, target in cdcg.flows():
            expected = sum(p.bits for p in cdcg.packets_between(source, target))
            assert cwg.weight(source, target) == expected


# ---------------------------------------------------------------------------
# Deadlock validation on degraded fabrics
# ---------------------------------------------------------------------------


class TestDegradedFabricProperties:
    """Degrading a certified fabric never crashes the validator.

    The scenario engine removes links and routers from certified mesh/torus
    pairs and re-validates before resuming traffic; these properties pin the
    two contracts that makes safe: ``validate_deadlock_free`` (via the
    fabric manager) never raises with ``raise_on_cycle=False``, and every
    rejection carries a witness that is a *real* cycle of the channel
    dependency graph.
    """

    @given(data=st.data())
    @SETTINGS
    def test_degrading_certified_pairs_never_raises(self, data):
        from repro.noc.topology import Torus
        from repro.scenario.events import LinkFailure, RouterFailure
        from repro.scenario.fabric import FabricManager

        width = data.draw(st.integers(min_value=2, max_value=4))
        height = data.draw(st.integers(min_value=2, max_value=4))
        base = data.draw(st.sampled_from(["mesh", "torus"]))
        topology = (
            Mesh(width, height) if base == "mesh" else Torus(width, height)
        )
        manager = FabricManager(Platform(mesh=topology, routing="table"))
        links = sorted(manager._undirected)

        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            if data.draw(st.booleans()):
                event = LinkFailure(*data.draw(st.sampled_from(links)))
            else:
                event = RouterFailure(
                    data.draw(
                        st.integers(min_value=0, max_value=topology.num_tiles - 1)
                    )
                )
            view, outcome = manager.preview(event)
            assert (view is not None) == outcome.applied
            if outcome.applied:
                manager.commit(view)
                assert view.certification.deadlock_free
            else:
                assert outcome.reason

    @given(data=st.data())
    @SETTINGS
    def test_rejection_witness_is_a_real_cdg_cycle(self, data):
        from hypothesis import assume

        from repro.graphs.crg import CRG
        from repro.noc.deadlock import channel_dependency_graph
        from repro.noc.topology import IrregularTopology
        from repro.utils.errors import GraphValidationError

        mesh = data.draw(mesh_strategy)
        base_crg = mesh.to_crg()
        undirected = sorted(
            {(min(l.source, l.target), max(l.source, l.target)) for l in base_crg.links}
        )
        removed = set(
            data.draw(
                st.lists(
                    st.sampled_from(undirected),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        )
        crg = CRG("degraded-prop")
        for tile in base_crg.tiles:
            crg.add_tile(tile.index, *tile.position)
        for link in base_crg.links:
            key = (min(link.source, link.target), max(link.source, link.target))
            if key in removed:
                continue
            crg.add_link(link.source, link.target)
        try:
            topology = IrregularTopology.from_crg(crg)
        except GraphValidationError:
            assume(False)  # disconnected draw — not this property's subject

        platform = Platform(mesh=topology, routing="table")
        report = platform.validate_deadlock_free(raise_on_cycle=False)
        assert report.num_channels > 0
        if report.deadlock_free:
            assert report.cycle == ()
            return

        # The witness must be a genuine cycle of the CDG: every consecutive
        # pair a real dependency, channels chaining head to tail, closed.
        graph = channel_dependency_graph(platform.topology, platform.routing)
        cycle = report.cycle
        assert len(cycle) >= 2
        for current, successor in zip(cycle, cycle[1:] + (cycle[0],)):
            assert current[1] == successor[0]
            assert successor in graph[current]
