"""Deterministic routing (repro.noc.routing)."""

import pytest

from repro.noc.routing import XYRouting, YXRouting, get_routing
from repro.noc.topology import Mesh, Torus
from repro.utils.errors import ConfigurationError


@pytest.fixture
def mesh() -> Mesh:
    return Mesh(4, 4)


class TestXYRouting:
    def test_same_tile(self, mesh):
        assert XYRouting().route(mesh, 5, 5) == [5]

    def test_horizontal_route(self, mesh):
        assert XYRouting().route(mesh, 0, 3) == [0, 1, 2, 3]

    def test_vertical_route(self, mesh):
        assert XYRouting().route(mesh, 0, 12) == [0, 4, 8, 12]

    def test_x_before_y(self, mesh):
        # from (0,0) to (2,2): go east twice, then south twice
        assert XYRouting().route(mesh, 0, 10) == [0, 1, 2, 6, 10]

    def test_negative_directions(self, mesh):
        assert XYRouting().route(mesh, 10, 0) == [10, 9, 8, 4, 0]

    def test_hop_count_matches_manhattan(self, mesh):
        routing = XYRouting()
        for source in mesh.tiles():
            for target in mesh.tiles():
                assert (
                    routing.hop_count(mesh, source, target)
                    == mesh.manhattan_distance(source, target) + 1
                )

    def test_links(self, mesh):
        assert XYRouting().links(mesh, 0, 5) == [(0, 1), (1, 5)]

    def test_route_is_mesh_adjacent(self, mesh):
        path = XYRouting().route(mesh, 3, 12)
        for a, b in zip(path, path[1:]):
            assert b in mesh.neighbours(a)

    def test_paper_example_route(self):
        # 2x2 mesh: from tau2 (A) to tau3 (F) in paper numbering, i.e. from
        # tile 1 to tile 2: XY goes through tile 0 (tau1), where the paper's
        # contention occurs.
        assert XYRouting().route(Mesh(2, 2), 1, 2) == [1, 0, 2]

    def test_endpoint_validation(self, mesh):
        with pytest.raises(ConfigurationError):
            XYRouting().route(mesh, 0, 99)
        with pytest.raises(ConfigurationError):
            XYRouting().route(mesh, -1, 0)


class TestYXRouting:
    def test_y_before_x(self, mesh):
        # from (0,0) to (2,2): go south twice, then east twice
        assert YXRouting().route(mesh, 0, 10) == [0, 4, 8, 9, 10]

    def test_same_endpoints_as_xy(self, mesh):
        xy, yx = XYRouting(), YXRouting()
        for source, target in [(0, 15), (3, 12), (7, 8)]:
            assert xy.route(mesh, source, target)[0] == yx.route(mesh, source, target)[0]
            assert xy.route(mesh, source, target)[-1] == yx.route(mesh, source, target)[-1]
            assert len(xy.route(mesh, source, target)) == len(
                yx.route(mesh, source, target)
            )


class TestTorusRouting:
    def test_wraparound_is_shorter(self):
        torus = Torus(4, 4)
        path = XYRouting().route(torus, 0, 3)
        # wrap west: 0 -> 3 directly
        assert path == [0, 3]

    def test_hop_count_matches_torus_distance(self):
        torus = Torus(4, 3)
        routing = XYRouting()
        for source in torus.tiles():
            for target in torus.tiles():
                assert (
                    routing.hop_count(torus, source, target)
                    == torus.manhattan_distance(source, target) + 1
                )


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_routing("xy"), XYRouting)
        assert isinstance(get_routing("YX"), YXRouting)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_routing("adaptive")
