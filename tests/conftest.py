"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (e.g. straight from a
# source checkout): put src/ on the path if the package is not importable.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Mapping, Mesh, NocParameters, Platform, XYRouting  # noqa: E402
from repro.energy.technology import TECH_PAPER_EXAMPLE  # noqa: E402
from repro.graphs.cdcg import CDCG  # noqa: E402
from repro.workloads.paper_example import (  # noqa: E402
    paper_example_cdcg,
    paper_example_cwg,
    paper_example_mappings,
    paper_example_platform,
)


@pytest.fixture
def example_cdcg() -> CDCG:
    """The paper's 4-core / 6-packet example application."""
    return paper_example_cdcg()


@pytest.fixture
def example_cwg():
    """The CWG collapse of the example application."""
    return paper_example_cwg()


@pytest.fixture
def example_platform() -> Platform:
    """The 2x2 example platform (tr=2, tl=1, 1 ns clock, 1-bit flits)."""
    return paper_example_platform()


@pytest.fixture
def example_mappings():
    """The two reference mappings of Figure 1(c, d)."""
    return paper_example_mappings()


@pytest.fixture
def small_platform() -> Platform:
    """A 3x3 platform with default (32-bit flit) parameters."""
    return Platform(mesh=Mesh(3, 3), routing=XYRouting(), parameters=NocParameters())


@pytest.fixture
def linear_cdcg() -> CDCG:
    """A tiny three-packet chain used by scheduler and search unit tests."""
    cdcg = CDCG("chain")
    cdcg.add_packet("p0", "a", "b", computation_time=5.0, bits=64)
    cdcg.add_packet("p1", "b", "c", computation_time=3.0, bits=32)
    cdcg.add_packet("p2", "c", "a", computation_time=2.0, bits=16)
    cdcg.add_dependence("p0", "p1")
    cdcg.add_dependence("p1", "p2")
    return cdcg


@pytest.fixture
def fork_join_cdcg() -> CDCG:
    """A fork-join CDCG: one producer fans out to two consumers that both feed
    a final collector packet.  Used to exercise concurrency and contention."""
    cdcg = CDCG("forkjoin")
    cdcg.add_packet("seed_x", "src", "x", computation_time=2.0, bits=200)
    cdcg.add_packet("seed_y", "src", "y", computation_time=2.0, bits=200)
    cdcg.add_packet("xout", "x", "sink", computation_time=4.0, bits=300)
    cdcg.add_packet("yout", "y", "sink", computation_time=4.0, bits=300)
    cdcg.add_packet("done", "sink", "src", computation_time=1.0, bits=32)
    cdcg.add_dependence("seed_x", "xout")
    cdcg.add_dependence("seed_y", "yout")
    cdcg.add_dependence("xout", "done")
    cdcg.add_dependence("yout", "done")
    return cdcg


@pytest.fixture
def example_technology():
    """The ERbit = ELbit = 1 pJ/bit technology of the worked example."""
    return TECH_PAPER_EXAMPLE


@pytest.fixture
def identity_mapping_4():
    """A->0, B->1, E->2, F->3 on a 4-tile NoC."""
    return Mapping({"A": 0, "B": 1, "E": 2, "F": 3}, num_tiles=4)
