"""Dynamic scenarios: events, degraded fabrics, incremental remapping.

Pins the scenario engine (:mod:`repro.scenario`) end to end:

* the event vocabulary and script serialisation (stable content hashes,
  JSON round-trips, seeded fuzz-script generation);
* :class:`~repro.scenario.fabric.FabricManager` — faults rebuild the fabric
  through ``IrregularTopology.from_crg``, re-derive table routing and
  re-certify deadlock freedom before anything is priced; failed
  certification and disconnection are rejected outcomes, never crashes;
* :mod:`~repro.scenario.remap` — region remapping re-searches only the
  cores an event touched, through any registry engine;
* the :class:`~repro.scenario.runner.ScenarioRunner` lifecycle, replayed
  through the conformance harness (``tests/scenario_harness.py``): ≥100
  seeded fuzz scripts across mesh, torus and irregular fabrics, serial and
  pooled backends, incremental vs full remap modes;
* the engine matrix over the :func:`~repro.workloads.suite.scenario_suite`
  families;
* the reproduction pin: :class:`~repro.analysis.comparison.ComparisonConfig`
  runs never construct a :class:`ScenarioRunner`.
"""

import json

import pytest

from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.analysis.tables import generate_table1
from repro.eval.parallel import ProcessPoolBackend
from repro.graphs.crg import CRG
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.scenario import (
    ApplicationArrival,
    ApplicationDeparture,
    FabricManager,
    LinkFailure,
    LinkRepair,
    RegionObjective,
    RouterFailure,
    ScenarioRunner,
    ScenarioScript,
    affected_cores,
    event_from_dict,
    random_script,
)
from repro.scenario import fabric as fabric_module
from repro.search.annealing import FAST_SCHEDULE
from repro.utils.errors import ConfigurationError
from repro.workloads.suite import _notched_mesh, scenario_suite, table1_suite
from scenario_harness import check_scenario_conformance

FUZZ_SEEDS = range(34)
FUZZ_FABRICS = ("mesh:3x3", "torus:3x3", "notched")
QUICK_ENGINE = dict(engine="random", engine_kwargs={"samples": 4})


def _fabric(spec):
    return _notched_mesh() if spec == "notched" else spec


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(n_workers=2)
    yield backend
    backend.close()


# ---------------------------------------------------------------------------
# Events and scripts
# ---------------------------------------------------------------------------
class TestEvents:
    def test_event_round_trip(self):
        events = [
            ApplicationArrival("app", 3, 8, 2_000, seed=5),
            ApplicationDeparture("app"),
            LinkFailure(3, 4),
            LinkRepair(3, 4),
            RouterFailure(7),
        ]
        for event in events:
            clone = event_from_dict(event.to_dict())
            assert clone == event
            assert clone.token() == event.token()

    def test_link_identity_is_undirected(self):
        assert LinkFailure(4, 3).link == LinkFailure(3, 4).link == (3, 4)

    def test_script_hash_is_stable_and_sensitive(self):
        script = scenario_suite()[0]
        again = ScenarioScript(
            name=script.name,
            topology=script.topology,
            events=script.events,
            seed=script.seed,
        )
        assert script.content_hash() == again.content_hash()
        reseeded = ScenarioScript(
            name=script.name,
            topology=script.topology,
            events=script.events,
            seed=script.seed + 1,
        )
        assert reseeded.content_hash() != script.content_hash()

    @pytest.mark.parametrize("fabric", FUZZ_FABRICS)
    def test_script_json_round_trip(self, fabric):
        script = random_script(_fabric(fabric), seed=9, num_events=6)
        payload = json.loads(json.dumps(script.to_dict()))
        clone = ScenarioScript.from_dict(payload)
        assert clone.content_hash() == script.content_hash()

    def test_random_script_is_seed_deterministic(self):
        a = random_script("mesh:3x3", seed=4, num_events=8)
        b = random_script("mesh:3x3", seed=4, num_events=8)
        c = random_script("mesh:3x3", seed=5, num_events=8)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()

    def test_spec_strings_resolve(self):
        script = ScenarioScript(name="s", topology="mesh:2x2", events=())
        assert script.topology.num_tiles == 4


# ---------------------------------------------------------------------------
# Degraded fabrics
# ---------------------------------------------------------------------------
class TestFabricManager:
    def test_healthy_view_is_identity(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        view = mgr.current_view()
        assert not view.degraded
        assert view.alive_tiles == list(range(9))
        assert view.to_local == {t: t for t in range(9)}

    def test_link_failure_rebuilds_through_from_crg(self, monkeypatch):
        calls = []
        original = fabric_module.degraded_topology_from_crg

        def spy(crg):
            calls.append(crg.name)
            return original(crg)

        monkeypatch.setattr(fabric_module, "degraded_topology_from_crg", spy)
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        view, outcome = mgr.preview(LinkFailure(0, 1))
        assert outcome.applied and outcome.deadlock_free
        assert calls, "degraded fabric did not travel through from_crg"
        assert view.platform.validate_deadlock_free(raise_on_cycle=False)

    def test_router_failure_compacts_tiles(self):
        mgr = FabricManager(Platform(mesh="mesh:4x4", routing="table"))
        view, outcome = mgr.preview(RouterFailure(0))
        assert outcome.applied
        assert view.alive_tiles == list(range(1, 16))
        assert view.platform.num_tiles == 15
        assert view.to_local[1] == 0 and view.to_base[0] == 1

    def test_interior_fault_rejected_with_witness_cycle(self):
        mgr = FabricManager(Platform(mesh="mesh:4x4", routing="table"))
        view, outcome = mgr.preview(LinkFailure(5, 6))
        assert view is None
        assert not outcome.applied and outcome.reason == "deadlock"
        assert not outcome.deadlock_free
        assert len(outcome.cycle) >= 2
        for (a, b) in outcome.cycle:
            # Witness channels are real base-fabric links.
            assert (min(a, b), max(a, b)) in mgr._undirected

    def test_disconnecting_fault_rejected(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        for event in (LinkFailure(0, 1), LinkFailure(0, 3)):
            view, outcome = mgr.preview(event)
            if view is not None:
                mgr.commit(view)
        # Tile 0 now has no links left: the second preview must have been
        # rejected (either as deadlock or disconnection), never a crash.
        assert mgr.current_view().platform.validate_deadlock_free(
            raise_on_cycle=False
        )

    def test_noop_faults_rejected_with_reasons(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        cases = [
            (LinkFailure(0, 8), "unknown-link"),
            (LinkRepair(0, 1), "link-not-failed"),
            (RouterFailure(99), "unknown-router"),
        ]
        for event, reason in cases:
            view, outcome = mgr.preview(event)
            assert view is None and outcome.reason == reason

    def test_views_memoised_by_fault_state(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        view1, _ = mgr.preview(LinkFailure(0, 1))
        view2, _ = mgr.preview(LinkFailure(0, 1))
        assert view1 is view2

    def test_repair_restores_base_platform(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        view, _ = mgr.preview(LinkFailure(0, 1))
        mgr.commit(view)
        repaired, outcome = mgr.preview(LinkRepair(0, 1))
        assert outcome.applied
        assert repaired.platform is mgr.base_platform

    def test_non_fault_event_raises(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        with pytest.raises(ConfigurationError):
            mgr.preview(ApplicationDeparture("app"))


# ---------------------------------------------------------------------------
# Region remapping
# ---------------------------------------------------------------------------
class TestRegionRemap:
    def _views(self):
        mgr = FabricManager(Platform(mesh="mesh:3x3", routing="table"))
        old = mgr.current_view()
        new, outcome = mgr.preview(LinkFailure(0, 1))
        assert outcome.applied
        return old, new

    def test_affected_cores_cover_rerouted_flows(self):
        old, new = self._views()
        placement = {"a": 0, "b": 1, "c": 8}
        affected = affected_cores([("a", "b"), ("b", "c")], placement, old, new)
        # The 0->1 route changes (the direct link died); 1->8 is unaffected.
        assert "a" in affected and "b" in affected
        assert "c" not in affected

    def test_dead_tile_cores_always_affected(self):
        mgr = FabricManager(Platform(mesh="mesh:4x4", routing="table"))
        old = mgr.current_view()
        new, outcome = mgr.preview(RouterFailure(0))
        assert outcome.applied
        affected = affected_cores([], {"a": 0, "b": 5}, old, new)
        assert affected == {"a"}

    def test_region_objective_validation(self):
        from repro.eval.context import CwmEvaluationContext
        from repro.graphs.convert import cdcg_to_cwg
        from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

        cdcg = TgffLikeGenerator(3).generate(
            TgffSpec(name="t", num_cores=3, num_packets=6, total_bits=900)
        )
        context = CwmEvaluationContext(
            cdcg_to_cwg(cdcg), Platform(mesh="mesh:3x3", routing="table")
        )
        cores = sorted(cdcg.cores())
        with pytest.raises(ConfigurationError):
            RegionObjective(context, {}, cores, allowed_tiles=[0, 0, 1])
        with pytest.raises(ConfigurationError):
            RegionObjective(context, {}, cores, allowed_tiles=[0, 1])
        with pytest.raises(ConfigurationError):
            RegionObjective(context, {cores[0]: 2}, cores[1:], [2, 3])

    def test_initial_mapping_keeps_surviving_tiles(self):
        from repro.eval.context import CwmEvaluationContext
        from repro.graphs.convert import cdcg_to_cwg
        from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

        cdcg = TgffLikeGenerator(3).generate(
            TgffSpec(name="t", num_cores=3, num_packets=6, total_bits=900)
        )
        context = CwmEvaluationContext(
            cdcg_to_cwg(cdcg), Platform(mesh="mesh:3x3", routing="table")
        )
        a, b, c = sorted(cdcg.cores())
        objective = RegionObjective(context, {}, (a, b, c), (2, 4, 6, 8))
        virtual = objective.initial_mapping({a: 4, b: 0, c: 8})
        placed = objective.placement(virtual)
        assert placed[a] == 4 and placed[c] == 8
        assert placed[b] in (2, 6)


# ---------------------------------------------------------------------------
# Runner lifecycle
# ---------------------------------------------------------------------------
class TestRunnerLifecycle:
    def test_duplicate_arrival_rejected(self):
        script = ScenarioScript(
            name="dup",
            topology="mesh:3x3",
            events=(
                ApplicationArrival("app", 2, 6, 800, seed=1),
                ApplicationArrival("app", 2, 6, 800, seed=2),
            ),
        )
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        assert trace.records[0].outcome.applied
        assert trace.records[1].outcome.reason == "duplicate-application"

    def test_unknown_departure_rejected(self):
        script = ScenarioScript(
            name="ghost",
            topology="mesh:3x3",
            events=(ApplicationDeparture("nobody"),),
        )
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        assert trace.records[0].outcome.reason == "unknown-application"

    def test_arrival_without_capacity_rejected(self):
        script = ScenarioScript(
            name="full-house",
            topology="mesh:2x2",
            events=(
                ApplicationArrival("big", 4, 8, 1_000, seed=1),
                ApplicationArrival("late", 1, 4, 400, seed=2),
            ),
        )
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        assert trace.records[0].outcome.applied
        assert trace.records[1].outcome.reason == "no-capacity"

    def test_fault_without_capacity_rejected(self):
        # 4 cores on 4 tiles: any router failure would leave 3 tiles.
        script = ScenarioScript(
            name="squeeze",
            topology="mesh:2x2",
            events=(
                ApplicationArrival("app", 4, 8, 1_000, seed=1),
                RouterFailure(0),
            ),
        )
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        assert trace.records[1].outcome.reason == "no-capacity"
        assert trace.records[1].alive_tiles == 4

    def test_departure_frees_tiles_for_later_arrivals(self):
        script = ScenarioScript(
            name="turnover",
            topology="mesh:2x2",
            events=(
                ApplicationArrival("first", 4, 8, 1_000, seed=1),
                ApplicationDeparture("first"),
                ApplicationArrival("second", 4, 8, 1_000, seed=2),
            ),
        )
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        assert [r.outcome.applied for r in trace.records] == [True, True, True]
        assert trace.records[2].apps == ("second",)

    def test_invalid_runner_configuration(self):
        script = ScenarioScript(name="cfg", topology="mesh:2x2", events=())
        with pytest.raises(ConfigurationError):
            ScenarioRunner(script, model="bogus")
        with pytest.raises(ConfigurationError):
            ScenarioRunner(script, remap="bogus")

    def test_cdcm_model_runs(self):
        script = ScenarioScript(
            name="cdcm",
            topology="mesh:3x3",
            events=(
                ApplicationArrival("app", 3, 8, 2_000, seed=1),
                LinkFailure(0, 1),
            ),
        )
        trace = ScenarioRunner(script, model="cdcm", **QUICK_ENGINE).run()
        assert all(r.outcome.applied for r in trace.records)
        names = dict(trace.records[-1].metrics)["app"]
        assert "energy" in dict(names)

    def test_trace_round_trips_to_dict(self):
        script = scenario_suite()[1]
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        payload = json.loads(json.dumps(trace.to_dict()))
        assert payload["script_hash"] == script.content_hash()
        assert len(payload["records"]) == len(script.events)


# ---------------------------------------------------------------------------
# Conformance: the scenario families of the workload suite
# ---------------------------------------------------------------------------
class TestSuiteFamilies:
    @pytest.mark.parametrize(
        "script", scenario_suite(), ids=lambda s: s.name
    )
    def test_family_conforms(self, script, pool):
        report = check_scenario_conformance(
            script,
            lambda: ScenarioRunner(script, **QUICK_ENGINE),
            compare_factories=[
                lambda: ScenarioRunner(script, backend=pool, **QUICK_ENGINE)
            ],
            full_factory=lambda: ScenarioRunner(
                script, remap="full", **QUICK_ENGINE
            ),
            label="suite",
        )
        assert report.compared == 1

    def test_torus_family_pins_the_rejection_path(self):
        script = next(s for s in scenario_suite() if s.name == "torus-fault")
        trace = ScenarioRunner(script, **QUICK_ENGINE).run()
        rejected = [r for r in trace.records if not r.outcome.applied]
        assert rejected, "torus family no longer exercises rejection"
        assert all(r.outcome.reason == "deadlock" for r in rejected)

    def test_families_exercise_applied_faults(self):
        # The storm/outage/irregular families must keep exercising the
        # degraded-fabric path for the engine matrix to mean anything.
        for name in ("mesh-link-storm", "router-outage", "irregular-fault"):
            script = next(s for s in scenario_suite() if s.name == name)
            trace = ScenarioRunner(script, **QUICK_ENGINE).run()
            applied_faults = [
                r
                for r in trace.records
                if r.outcome.applied and r.kind.endswith("failure")
            ]
            assert applied_faults, f"{name} applies no faults"


# ---------------------------------------------------------------------------
# Engine matrix over the suite families
# ---------------------------------------------------------------------------
ENGINE_MATRIX = [
    ("annealing", {"schedule": FAST_SCHEDULE}),
    ("random", {"samples": 4}),
    ("genetic", {}),
    ("nsga2", {}),
]


class TestEngineMatrix:
    @pytest.mark.parametrize(
        "engine,kwargs", ENGINE_MATRIX, ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize(
        "script", scenario_suite(), ids=lambda s: s.name
    )
    def test_every_engine_replays_deterministically(self, script, engine, kwargs):
        check_scenario_conformance(
            script,
            lambda: ScenarioRunner(script, engine=engine, engine_kwargs=kwargs),
            label=f"matrix:{engine}",
        )

    def test_exhaustive_engine_on_small_families(self):
        # Exhaustive search enumerates permutations, so it only fits the
        # 3x3 families with ≤3 movable cores.
        for name in ("mesh-churn", "irregular-fault"):
            script = next(s for s in scenario_suite() if s.name == name)
            check_scenario_conformance(
                script,
                lambda: ScenarioRunner(script, engine="exhaustive"),
                label="matrix:exhaustive",
            )


# ---------------------------------------------------------------------------
# Fuzz: ≥100 random scripts through the conformance harness
# ---------------------------------------------------------------------------
class TestFuzzConformance:
    @pytest.mark.parametrize("fabric", FUZZ_FABRICS)
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_random_script_conforms(self, fabric, seed, pool):
        script = random_script(_fabric(fabric), seed=seed, num_events=6)
        check_scenario_conformance(
            script,
            lambda: ScenarioRunner(script, **QUICK_ENGINE),
            compare_factories=[
                lambda: ScenarioRunner(script, backend=pool, **QUICK_ENGINE)
            ],
            full_factory=lambda: ScenarioRunner(
                script, remap="full", **QUICK_ENGINE
            ),
            label=f"fuzz:{fabric}",
        )

    def test_fuzz_corpus_is_at_least_100_scripts(self):
        assert len(FUZZ_SEEDS) * len(FUZZ_FABRICS) >= 100

    def test_counterexamples_replay_from_json(self):
        # The harness prints failing scripts as to_dict JSON; prove the
        # replay loop works for every fuzz fabric.
        for fabric in FUZZ_FABRICS:
            script = random_script(_fabric(fabric), seed=7, num_events=6)
            clone = ScenarioScript.from_dict(
                json.loads(json.dumps(script.to_dict()))
            )
            a = ScenarioRunner(clone, **QUICK_ENGINE).run()
            b = ScenarioRunner(script, **QUICK_ENGINE).run()
            assert a.content_hash() == b.content_hash()


# ---------------------------------------------------------------------------
# Reproduction pin: ComparisonConfig is scenario-free
# ---------------------------------------------------------------------------
class TestComparisonScenarioPin:
    def test_reproduction_never_builds_a_scenario_runner(self, monkeypatch):
        def explode(*args, **kwargs):  # pragma: no cover - would be the bug
            raise AssertionError(
                "a reproduced table constructed a ScenarioRunner"
            )

        monkeypatch.setattr(ScenarioRunner, "__init__", explode)

        from repro.workloads.paper_example import (
            paper_example_cdcg,
            paper_example_platform,
        )

        comparison = compare_models(
            paper_example_cdcg(),
            paper_example_platform(),
            ComparisonConfig(annealing_schedule=FAST_SCHEDULE),
            seed=3,
        )
        assert comparison.cwm_outcome.mapping is not None

        rows = generate_table1(table1_suite(max_noc_tiles=8))
        assert rows, "Table 1 subset came back empty"
