"""Core-to-tile mappings (repro.core.mapping)."""

import pytest

from repro.core.mapping import Mapping
from repro.utils.errors import MappingError


class TestConstruction:
    def test_basic(self):
        mapping = Mapping({"a": 0, "b": 2}, num_tiles=4)
        assert mapping.tile_of("a") == 0
        assert mapping.core_at(2) == "b"
        assert mapping.core_at(1) is None
        assert mapping.num_cores == 2

    def test_rejects_duplicate_tiles(self):
        with pytest.raises(MappingError):
            Mapping({"a": 0, "b": 0})

    def test_rejects_negative_tile(self):
        with pytest.raises(MappingError):
            Mapping({"a": -1})

    def test_rejects_tile_beyond_noc(self):
        with pytest.raises(MappingError):
            Mapping({"a": 4}, num_tiles=4)

    def test_rejects_non_integer_tiles(self):
        with pytest.raises(MappingError):
            Mapping({"a": "zero"})
        with pytest.raises(MappingError):
            Mapping({"a": True})

    def test_rejects_more_cores_than_tiles(self):
        with pytest.raises(MappingError):
            Mapping.random(["a", "b", "c"], 2)

    def test_identity(self):
        mapping = Mapping.identity(["x", "y", "z"], num_tiles=5)
        assert mapping.tile_of("y") == 1
        assert mapping.num_tiles == 5

    def test_random_is_injective_and_seeded(self):
        cores = [f"c{i}" for i in range(6)]
        a = Mapping.random(cores, 9, rng=3)
        b = Mapping.random(cores, 9, rng=3)
        c = Mapping.random(cores, 9, rng=4)
        assert a == b
        assert a != c
        assert len(set(a.assignments().values())) == 6


class TestLookups:
    def test_missing_core(self):
        with pytest.raises(MappingError):
            Mapping({"a": 0}).tile_of("b")

    def test_used_and_free_tiles(self):
        mapping = Mapping({"a": 0, "b": 3}, num_tiles=4)
        assert mapping.used_tiles() == [0, 3]
        assert mapping.free_tiles() == [1, 2]

    def test_free_tiles_requires_num_tiles(self):
        with pytest.raises(MappingError):
            Mapping({"a": 0}).free_tiles()

    def test_iteration_and_len(self):
        mapping = Mapping({"b": 1, "a": 0})
        assert list(mapping) == [("a", 0), ("b", 1)]
        assert len(mapping) == 2

    def test_has_core(self):
        mapping = Mapping({"a": 0})
        assert mapping.has_core("a") and not mapping.has_core("b")


class TestTransformations:
    def test_swap_cores(self):
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        swapped = mapping.swap_cores("a", "b")
        assert swapped.tile_of("a") == 1
        assert swapped.tile_of("b") == 0
        assert mapping.tile_of("a") == 0  # immutability

    def test_swap_tiles_with_empty(self):
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        moved = mapping.swap_tiles(0, 3)
        assert moved.tile_of("a") == 3
        assert moved.core_at(0) is None

    def test_swap_tiles_both_empty_is_noop(self):
        mapping = Mapping({"a": 0}, num_tiles=4)
        assert mapping.swap_tiles(2, 3) == mapping

    def test_swap_tiles_out_of_range(self):
        with pytest.raises(MappingError):
            Mapping({"a": 0}, num_tiles=4).swap_tiles(0, 9)

    def test_move_core_to_free_tile(self):
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        moved = mapping.move_core("a", 2)
        assert moved.tile_of("a") == 2
        assert moved.tile_of("b") == 1

    def test_move_core_to_occupied_tile_swaps(self):
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        moved = mapping.move_core("a", 1)
        assert moved.tile_of("a") == 1
        assert moved.tile_of("b") == 0

    def test_relabel_tiles(self):
        mapping = Mapping({"a": 0, "b": 1}, num_tiles=4)
        relabelled = mapping.relabel_tiles({0: 3, 3: 0})
        assert relabelled.tile_of("a") == 3
        assert relabelled.tile_of("b") == 1


class TestEqualityAndHashing:
    def test_equality(self):
        assert Mapping({"a": 0, "b": 1}) == Mapping({"b": 1, "a": 0})
        assert Mapping({"a": 0}) != Mapping({"a": 1})

    def test_hash_usable_in_sets(self):
        seen = {Mapping({"a": 0, "b": 1}), Mapping({"b": 1, "a": 0})}
        assert len(seen) == 1

    def test_repr(self):
        assert "a->tau0" in repr(Mapping({"a": 0}))
