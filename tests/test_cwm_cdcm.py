"""CWM and CDCM evaluators (repro.core.cwm, repro.core.cdcm)."""

import pytest

from repro.core.cdcm import CdcmEvaluator
from repro.core.cwm import CwmEvaluator
from repro.core.mapping import Mapping
from repro.energy.technology import TECH_0_07UM, TECH_0_35UM
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.resources import LinkResource, RouterResource
from repro.noc.topology import Mesh
from repro.utils.errors import ConfigurationError, MappingError


class TestCwmEvaluator:
    def test_cost_equals_report_total(self, example_cdcg, example_platform, example_mappings):
        cwg = cdcg_to_cwg(example_cdcg)
        evaluator = CwmEvaluator(example_platform)
        cost = evaluator.cost(cwg, example_mappings["c"])
        report = evaluator.evaluate(cwg, example_mappings["c"])
        assert cost == pytest.approx(report.dynamic_energy)
        assert report.total_energy == pytest.approx(report.dynamic_energy)

    def test_closer_cores_cost_less(self, example_cdcg):
        platform = Platform(mesh=Mesh(3, 3))
        cwg = cdcg_to_cwg(example_cdcg)
        evaluator = CwmEvaluator(platform)
        compact = Mapping({"A": 0, "B": 1, "E": 3, "F": 4}, num_tiles=9)
        spread = Mapping({"A": 0, "B": 2, "E": 6, "F": 8}, num_tiles=9)
        assert evaluator.cost(cwg, compact) < evaluator.cost(cwg, spread)

    def test_report_bit_accessors(self, example_cdcg, example_platform, example_mappings):
        cwg = cdcg_to_cwg(example_cdcg)
        report = CwmEvaluator(example_platform).evaluate(cwg, example_mappings["c"])
        # every router is crossed by something in this example
        assert report.router_bits(0) > 0
        assert report.link_bits(3, 1) > 0       # E -> A traffic
        assert report.router_bits(99) == 0
        assert report.link_bits(0, 3) == 0       # not a mesh link

    def test_missing_core_raises(self, example_cdcg, example_platform):
        cwg = cdcg_to_cwg(example_cdcg)
        evaluator = CwmEvaluator(example_platform)
        with pytest.raises(MappingError):
            evaluator.cost(cwg, {"A": 0})

    def test_energy_breakdown_adapter(self, example_cdcg, example_platform, example_mappings):
        cwg = cdcg_to_cwg(example_cdcg)
        report = CwmEvaluator(example_platform).evaluate(cwg, example_mappings["c"])
        breakdown = report.energy_breakdown("demo")
        assert breakdown.static == 0.0
        assert breakdown.dynamic == pytest.approx(390.0)


class TestCdcmEvaluator:
    def test_energy_metric_is_total_energy(
        self, example_cdcg, example_platform, example_mappings
    ):
        evaluator = CdcmEvaluator(example_platform, metric="energy")
        cost = evaluator.cost(example_cdcg, example_mappings["c"])
        assert cost == pytest.approx(400.0)

    def test_time_metric_is_execution_time(
        self, example_cdcg, example_platform, example_mappings
    ):
        evaluator = CdcmEvaluator(example_platform, metric="time")
        assert evaluator.cost(example_cdcg, example_mappings["d"]) == pytest.approx(90.0)

    def test_weighted_metric(self, example_cdcg, example_platform, example_mappings):
        evaluator = CdcmEvaluator(
            example_platform, metric="weighted", energy_weight=1.0, time_weight=2.0
        )
        assert evaluator.cost(example_cdcg, example_mappings["c"]) == pytest.approx(
            400.0 + 2 * 100.0
        )

    def test_unknown_metric(self, example_platform):
        with pytest.raises(ConfigurationError):
            CdcmEvaluator(example_platform, metric="latency")

    def test_report_fields(self, example_cdcg, example_platform, example_mappings):
        report = CdcmEvaluator(example_platform).evaluate(
            example_cdcg, example_mappings["c"]
        )
        assert report.execution_time == pytest.approx(100.0)
        assert report.dynamic_energy == pytest.approx(390.0)
        assert report.static_energy == pytest.approx(10.0)
        assert report.total_contention_delay == pytest.approx(7.0)
        assert report.application == example_cdcg.name

    def test_technology_override_in_evaluate(
        self, example_cdcg, example_platform, example_mappings
    ):
        evaluator = CdcmEvaluator(example_platform)
        report = evaluator.evaluate(
            example_cdcg, example_mappings["c"], technology=TECH_0_07UM
        )
        assert report.energy.technology_name == "0.07um"
        # timing is technology independent
        assert report.execution_time == pytest.approx(100.0)

    def test_reprice_keeps_schedule(self, example_cdcg, example_platform, example_mappings):
        evaluator = CdcmEvaluator(example_platform)
        base = evaluator.evaluate(example_cdcg, example_mappings["d"])
        repriced = evaluator.reprice(base, TECH_0_35UM)
        assert repriced.schedule is base.schedule
        assert repriced.energy.technology_name == "0.35um"
        assert repriced.execution_time == base.execution_time

    def test_cdcm_distinguishes_mappings_cwm_cannot(
        self, example_cdcg, example_platform, example_mappings
    ):
        cwm = CwmEvaluator(example_platform)
        cdcm = CdcmEvaluator(example_platform)
        cwg = cdcg_to_cwg(example_cdcg)
        cwm_costs = {
            name: cwm.cost(cwg, mapping) for name, mapping in example_mappings.items()
        }
        cdcm_costs = {
            name: cdcm.cost(example_cdcg, mapping)
            for name, mapping in example_mappings.items()
        }
        assert cwm_costs["c"] == pytest.approx(cwm_costs["d"])
        assert cdcm_costs["d"] < cdcm_costs["c"]
