"""Objective adapters and the FRW framework (repro.core.objective / framework)."""

import pytest

from repro.core.framework import FRWFramework
from repro.core.mapping import Mapping
from repro.core.objective import CountingObjective, cdcm_objective, cwm_objective
from repro.energy.technology import TECH_0_35UM
from repro.graphs.cdcg import CDCG
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.annealing import FAST_SCHEDULE, SimulatedAnnealing
from repro.utils.errors import ConfigurationError, MappingError


class TestCountingObjective:
    def test_counts_calls_and_time(self, example_cdcg, example_platform, example_mappings):
        objective = cdcm_objective(example_cdcg, example_platform)
        assert objective.evaluations == 0
        objective(example_mappings["c"])
        objective(example_mappings["d"])
        assert objective.evaluations == 2
        assert objective.elapsed > 0.0
        objective.reset()
        assert objective.evaluations == 0
        assert objective.elapsed == 0.0

    def test_repr_mentions_name(self):
        objective = CountingObjective(lambda m: 0.0, name="demo")
        assert "demo" in repr(objective)

    def test_cwm_objective_value(self, example_cdcg, example_platform, example_mappings):
        from repro.graphs.convert import cdcg_to_cwg

        objective = cwm_objective(cdcg_to_cwg(example_cdcg), example_platform)
        assert objective(example_mappings["c"]) == pytest.approx(390.0)

    def test_cdcm_objective_value(self, example_cdcg, example_platform, example_mappings):
        objective = cdcm_objective(example_cdcg, example_platform)
        assert objective(example_mappings["d"]) == pytest.approx(399.0)


class TestFrameworkConstruction:
    def test_validates_application(self, example_platform):
        bad = CDCG("cyclic")
        bad.add_packet("x", "a", "b", 1.0, 1)
        bad.add_packet("y", "b", "a", 1.0, 1)
        bad.add_dependence("x", "y")
        bad.add_dependence("y", "x")
        with pytest.raises(Exception):
            FRWFramework(bad, example_platform)

    def test_rejects_too_many_cores(self, example_cdcg):
        tiny = Platform(mesh=Mesh(1, 2))
        with pytest.raises(MappingError):
            FRWFramework(example_cdcg, tiny)

    def test_derives_cwg(self, example_cdcg, example_platform):
        framework = FRWFramework(example_cdcg, example_platform)
        assert framework.cwg.weight("E", "A") == 35


class TestFrameworkMapping:
    @pytest.fixture
    def framework(self, example_cdcg, example_platform):
        return FRWFramework(example_cdcg, example_platform)

    def test_initial_mapping_is_seeded(self, framework):
        assert framework.initial_mapping(5) == framework.initial_mapping(5)

    def test_greedy_mapping_places_all_cores(self, framework):
        mapping = framework.greedy_mapping()
        assert sorted(mapping.cores) == ["A", "B", "E", "F"]

    def test_map_with_exhaustive_finds_optimum(self, framework, example_mappings):
        outcome = framework.map(model="cdcm", method="exhaustive", seed=1)
        # 4 cores on 4 tiles: the optimum must be at least as good as both
        # reference mappings.
        assert outcome.cost <= 399.0 + 1e-9
        assert outcome.method == "exhaustive"
        assert outcome.evaluations >= 24

    def test_map_with_annealing(self, framework):
        outcome = framework.map(
            model="cwm",
            searcher=SimulatedAnnealing(FAST_SCHEDULE),
            seed=2,
        )
        assert outcome.model == "cwm"
        assert outcome.cost == pytest.approx(390.0)  # CWM optimum of this app
        assert outcome.cpu_time >= 0.0

    def test_map_unknown_model(self, framework):
        with pytest.raises(ConfigurationError):
            framework.map(model="hybrid")

    def test_objective_factory(self, framework):
        assert "cwm" in framework.objective("cwm").name
        assert "cdcm" in framework.objective("cdcm").name
        with pytest.raises(ConfigurationError):
            framework.objective("nope")

    def test_evaluate_reports_cdcm_quantities(self, framework, example_mappings):
        report = framework.evaluate(example_mappings["c"])
        assert report.execution_time == pytest.approx(100.0)
        report35 = framework.evaluate(example_mappings["c"], TECH_0_35UM)
        assert report35.energy.technology_name == "0.35um"

    def test_evaluate_cwm_cost(self, framework, example_mappings):
        assert framework.evaluate_cwm_cost(example_mappings["d"]) == pytest.approx(390.0)

    def test_evaluate_many(self, framework, example_mappings):
        reports = framework.evaluate_many(example_mappings)
        assert set(reports) == {"c", "d"}
        assert reports["d"].execution_time < reports["c"].execution_time

    def test_explicit_initial_mapping_is_used(self, framework, example_mappings):
        outcome = framework.map(
            model="cdcm",
            method="random",
            seed=0,
            initial=example_mappings["d"],
            samples=5,
        )
        # random search keeps the initial mapping when nothing better is found
        assert outcome.cost <= 399.0 + 1e-9
