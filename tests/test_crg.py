"""Communication resource graph (repro.graphs.crg)."""

import pytest

from repro.graphs.crg import CRG, Link, Tile
from repro.utils.errors import GraphValidationError


@pytest.fixture
def two_by_one() -> CRG:
    crg = CRG("pair")
    crg.add_tile(0, 0, 0)
    crg.add_tile(1, 1, 0)
    crg.add_link(0, 1, "horizontal")
    crg.add_link(1, 0, "horizontal")
    return crg


class TestTileAndLink:
    def test_tile_name_and_position(self):
        tile = Tile(3, 1, 2)
        assert tile.name == "tau3"
        assert tile.position == (1, 2)

    def test_link_key(self):
        assert Link(0, 1).key == (0, 1)

    def test_link_rejects_self_loop(self):
        with pytest.raises(GraphValidationError):
            Link(2, 2)

    def test_link_rejects_bad_orientation(self):
        with pytest.raises(GraphValidationError):
            Link(0, 1, "diagonal")


class TestConstruction:
    def test_duplicate_tile_rejected(self, two_by_one):
        with pytest.raises(GraphValidationError):
            two_by_one.add_tile(0, 5, 5)

    def test_negative_index_rejected(self):
        with pytest.raises(GraphValidationError):
            CRG().add_tile(-1, 0, 0)

    def test_link_requires_existing_tiles(self, two_by_one):
        with pytest.raises(GraphValidationError):
            two_by_one.add_link(0, 9)

    def test_duplicate_link_rejected(self, two_by_one):
        with pytest.raises(GraphValidationError):
            two_by_one.add_link(0, 1)


class TestInspection:
    def test_counts(self, two_by_one):
        assert two_by_one.num_tiles == 2
        assert two_by_one.num_links == 2
        assert len(two_by_one) == 2

    def test_tile_lookup(self, two_by_one):
        assert two_by_one.tile(1).position == (1, 0)
        with pytest.raises(GraphValidationError):
            two_by_one.tile(9)

    def test_link_lookup(self, two_by_one):
        assert two_by_one.link(0, 1).orientation == "horizontal"
        with pytest.raises(GraphValidationError):
            two_by_one.link(1, 2)

    def test_has_helpers(self, two_by_one):
        assert two_by_one.has_tile(0)
        assert not two_by_one.has_tile(7)
        assert two_by_one.has_link(0, 1)
        assert not two_by_one.has_link(0, 0)
        assert 0 in two_by_one

    def test_neighbours(self, two_by_one):
        assert two_by_one.neighbours(0) == [1]
        with pytest.raises(GraphValidationError):
            two_by_one.neighbours(9)

    def test_tile_at(self, two_by_one):
        assert two_by_one.tile_at(1, 0).index == 1
        with pytest.raises(GraphValidationError):
            two_by_one.tile_at(5, 5)


class TestValidation:
    def test_validate_ok(self, two_by_one):
        two_by_one.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(GraphValidationError):
            CRG().validate()

    def test_validate_rejects_duplicate_positions(self):
        crg = CRG()
        crg.add_tile(0, 0, 0)
        crg.add_tile(1, 0, 0)
        with pytest.raises(GraphValidationError):
            crg.validate()

    def test_validate_rejects_disconnected(self):
        crg = CRG()
        crg.add_tile(0, 0, 0)
        crg.add_tile(1, 1, 0)
        with pytest.raises(GraphValidationError):
            crg.validate()


class TestConversion:
    def test_to_networkx(self, two_by_one):
        graph = two_by_one.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.edges[0, 1]["orientation"] == "horizontal"

    def test_copy(self, two_by_one):
        clone = two_by_one.copy()
        clone.add_tile(2, 2, 0)
        assert two_by_one.num_tiles == 2
        assert clone.num_tiles == 3

    def test_repr(self, two_by_one):
        assert "tiles=2" in repr(two_by_one)
