"""Tests for the routing×mapping co-design subsystem (:mod:`repro.codesign`).

Covers the acceptance properties of the co-design PR:

* **reachability by construction** (hypothesis) — every synthesized or
  mutated next-hop table routes every tile pair, minimally;
* **genuine witnesses** (hypothesis) — a rejected table always carries a
  closed cycle of real channel-dependency-graph edges;
* **certify before price** — the deadlock gate sits structurally in front
  of every pricing context :class:`~repro.codesign.engine.CodesignSearch`
  ever creates (recorded-gate and explode-monkeypatch regressions);
* **determinism** — seeded co-design runs are bit-identical, including
  serial vs :class:`~repro.eval.parallel.ProcessPoolBackend` (extending the
  PR 4 determinism matrix);
* **append-only metrics** (satellite) — ``max_link_utilisation`` joined
  :data:`~repro.core.metrics.CDCM_METRIC_NAMES` as a fifth component and
  the congestion components of :class:`~repro.codesign.load.LoadAwareCwmContext`
  ride at the end of the CWM vector, with every legacy weight view pinned
  bit-identical to its four-component (resp. one-component) truncation.
"""

from __future__ import annotations

import os
import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

import repro.codesign.synthesis as synthesis_module
from repro.codesign import (
    CertificationResult,
    CodesignParameters,
    CodesignResult,
    CodesignSearch,
    LOAD_METRIC_NAMES,
    LoadAwareCwmContext,
    SynthesizedRouting,
    TableSynthesizer,
    link_load_spread,
    link_loads,
    max_link_load,
    register_synthesized,
)
from repro.core.cdcm import CdcmEvaluator
from repro.core.mapping import Mapping
from repro.core.metrics import CDCM_METRIC_NAMES, MetricVector, scalarisation_weights
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.eval.parallel import ProcessPoolBackend, SerialBackend
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.deadlock import channel_dependency_graph, validate_deadlock_free
from repro.noc.platform import Platform
from repro.noc.routing import XYRouting, get_routing
from repro.noc.topology import Mesh
from repro.utils.errors import ConfigurationError
from repro.workloads.embedded import image_encoder

N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

SEED = 20050307

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

mesh_strategy = st.builds(
    Mesh,
    width=st.integers(min_value=2, max_value=4),
    height=st.integers(min_value=2, max_value=4),
)


@pytest.fixture(scope="module")
def mesh_3x3():
    return Mesh(3, 3)


@pytest.fixture(scope="module")
def synthesizer(mesh_3x3):
    return TableSynthesizer(mesh_3x3)


@pytest.fixture(scope="module")
def encoder_workload():
    cdcg = image_encoder()
    platform = Platform(mesh=Mesh(3, 3))
    return cdcg, platform


# ---------------------------------------------------------------------------
# SynthesizedRouting
# ---------------------------------------------------------------------------


class TestSynthesizedRouting:
    def test_materialised_xy_reproduces_xy_routes(self, mesh_3x3, synthesizer):
        table = synthesizer.materialise(XYRouting())
        routing = SynthesizedRouting(table)
        xy = XYRouting()
        for source in mesh_3x3.tiles():
            for target in mesh_3x3.tiles():
                assert routing.route(mesh_3x3, source, target) == xy.route(
                    mesh_3x3, source, target
                )

    def test_self_route_is_single_tile(self, mesh_3x3, synthesizer):
        routing = SynthesizedRouting(synthesizer.materialise(XYRouting()))
        assert routing.route(mesh_3x3, 4, 4) == [4]

    def test_endpoint_validation(self, mesh_3x3, synthesizer):
        routing = SynthesizedRouting(synthesizer.materialise(XYRouting()))
        with pytest.raises(ConfigurationError):
            routing.route(mesh_3x3, 0, 99)
        with pytest.raises(ConfigurationError):
            routing.route(Mesh(2, 2), 0, 1)  # table covers 9 tiles, mesh 4

    def test_malformed_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesizedRouting(())
        with pytest.raises(ConfigurationError):
            SynthesizedRouting(((0, 1), (0,)))  # ragged row
        with pytest.raises(ConfigurationError):
            SynthesizedRouting(((-1, 0), (9, -1)))  # hop outside table

    def test_missing_route_raises(self, mesh_3x3):
        table = [[-1] * 9 for _ in range(9)]
        routing = SynthesizedRouting(table)
        with pytest.raises(ConfigurationError, match="no route"):
            routing.route(mesh_3x3, 0, 8)

    def test_routing_loop_detected(self, mesh_3x3):
        table = [[-1] * 9 for _ in range(9)]
        table[8][0], table[8][1] = 1, 0  # 0 <-> 1 ping-pong towards 8
        routing = SynthesizedRouting(table)
        with pytest.raises(ConfigurationError, match="loop"):
            routing.route(mesh_3x3, 0, 8)

    def test_cache_token_is_content_addressed(self, synthesizer):
        table = synthesizer.materialise(XYRouting())
        a, b = SynthesizedRouting(table), SynthesizedRouting(table)
        assert a == b and a.cache_token == b.cache_token
        other = SynthesizedRouting(synthesizer.materialise(get_routing("yx")))
        assert a != other and a.cache_token != other.cache_token

    def test_pickle_round_trip(self, synthesizer):
        routing = SynthesizedRouting(synthesizer.materialise(XYRouting()))
        clone = pickle.loads(pickle.dumps(routing))
        assert clone == routing
        assert clone.cache_token == routing.cache_token

    def test_register_synthesized_is_addressable(self, synthesizer):
        routing = SynthesizedRouting(synthesizer.materialise(XYRouting()))
        register_synthesized("codesign-test-table", routing, overwrite=True)
        assert get_routing("codesign-test-table") is routing
        platform = Platform(mesh=Mesh(3, 3), routing="codesign-test-table")
        assert platform.routing is routing


# ---------------------------------------------------------------------------
# Synthesis properties (hypothesis)
# ---------------------------------------------------------------------------


class TestSynthesisProperties:
    @SETTINGS
    @given(mesh=mesh_strategy, seed=st.integers(min_value=0, max_value=2**31))
    def test_random_tables_route_all_pairs_minimally(self, mesh, seed):
        synthesizer = TableSynthesizer(mesh)
        routing = SynthesizedRouting(synthesizer.random_table(rng=seed))
        xy = XYRouting()
        for source in mesh.tiles():
            for target in mesh.tiles():
                path = routing.route(mesh, source, target)
                assert path[0] == source and path[-1] == target
                # Minimal by construction: same hop count as XY.
                assert len(path) == len(xy.route(mesh, source, target))

    @SETTINGS
    @given(mesh=mesh_strategy, seed=st.integers(min_value=0, max_value=2**31))
    def test_mutated_tables_stay_reachable(self, mesh, seed):
        synthesizer = TableSynthesizer(mesh)
        table = synthesizer.random_table(rng=seed)
        mutated = synthesizer.mutate(table, rng=seed + 1, mutations=4)
        routing = SynthesizedRouting(mutated)
        for source in mesh.tiles():
            for target in mesh.tiles():
                path = routing.route(mesh, source, target)
                assert path[0] == source and path[-1] == target

    @SETTINGS
    @given(mesh=mesh_strategy, seed=st.integers(min_value=0, max_value=2**31))
    def test_repair_policy_always_certifies(self, mesh, seed):
        synthesizer = TableSynthesizer(mesh)
        result = synthesizer.certify(
            synthesizer.random_table(rng=seed), policy="repair"
        )
        assert result.certified
        assert result.routing is not None
        report = validate_deadlock_free(mesh, result.routing, raise_on_cycle=False)
        assert report.deadlock_free

    @SETTINGS
    @given(mesh=mesh_strategy, seed=st.integers(min_value=0, max_value=2**31))
    def test_rejections_carry_genuine_witness_cycles(self, mesh, seed):
        synthesizer = TableSynthesizer(mesh)
        table = synthesizer.random_table(rng=seed)
        result = synthesizer.certify(table, policy="reject")
        if result.certified:
            assert result.witness == ()
            return
        witness = result.witness
        assert len(witness) >= 2
        graph = channel_dependency_graph(mesh, SynthesizedRouting(table))
        for position, channel in enumerate(witness):
            successor = witness[(position + 1) % len(witness)]
            assert successor in graph[channel], (
                f"witness edge {channel} -> {successor} is not a CDG edge"
            )


# ---------------------------------------------------------------------------
# Certification gate
# ---------------------------------------------------------------------------


class TestCertification:
    def test_all_seed_tables_certify(self, mesh_3x3, synthesizer):
        seeds = synthesizer.seed_tables()
        assert set(seeds) == {"xy", "yx", "west-first", "negative-first", "table"}
        for table in seeds.values():
            result = synthesizer.certify(table, policy="reject")
            assert result.certified and not result.repaired

    def test_repair_reports_witness_and_flag(self, synthesizer):
        # Scan fixed seeds for a cyclic random table; plenty exist on 3x3.
        for seed in range(64):
            table = synthesizer.random_table(rng=seed)
            rejected = synthesizer.certify(table, policy="reject")
            if rejected.certified:
                continue
            repaired = synthesizer.certify(table, policy="repair")
            assert repaired.certified and repaired.repaired
            assert repaired.witness == rejected.witness
            assert repaired.routing.next_hops != tuple(table) or True
            return
        pytest.fail("no cyclic random table found in 64 seeds")

    def test_unknown_policy_rejected(self, synthesizer):
        with pytest.raises(ConfigurationError):
            synthesizer.certify(synthesizer.random_table(rng=0), policy="ignore")

    def test_chain_topology_has_no_mutable_entries(self):
        synthesizer = TableSynthesizer(Mesh(4, 1))
        table = synthesizer.random_table(rng=0)
        assert synthesizer.mutate(table, rng=1) == table

    def test_unroutable_fabric_needs_no_gate(self):
        # A 1x1 mesh routes nothing; the BFS seed still certifies.
        synthesizer = TableSynthesizer(Mesh(1, 1))
        result = synthesizer.certify(synthesizer.random_table(rng=0))
        assert result.certified


# ---------------------------------------------------------------------------
# Load-aware CWM context (congestion components, satellite)
# ---------------------------------------------------------------------------


class TestLoadAwareCwmContext:
    @pytest.fixture(scope="class")
    def load_setup(self, encoder_workload):
        cdcg, platform = encoder_workload
        cwg = cdcg_to_cwg(cdcg)
        context = LoadAwareCwmContext(cwg, platform)
        mappings = [
            Mapping.random(cwg.cores, platform.num_tiles, rng=index)
            for index in range(6)
        ]
        return cwg, platform, context, mappings

    def test_component_names_append_only(self):
        assert LOAD_METRIC_NAMES[0] == "dynamic_energy"
        assert LOAD_METRIC_NAMES[-2:] == ("max_link_load", "link_load_spread")

    def test_components_match_standalone_helpers(self, load_setup):
        cwg, platform, context, mappings = load_setup
        num_links = len(platform.mesh.links())
        for mapping in mappings:
            vector = context.metrics(mapping)
            loads = link_loads(cwg, mapping, context.route_table)
            assert vector["max_link_load"] == max_link_load(loads)
            assert vector["link_load_spread"] == link_load_spread(loads, num_links)

    def test_legacy_energy_and_cost_bit_identical(self, load_setup):
        cwg, platform, context, mappings = load_setup
        plain = CwmEvaluationContext(cwg, platform)
        for mapping in mappings:
            vector = context.metrics(mapping)
            assert vector["dynamic_energy"] == plain.metrics(mapping)["dynamic_energy"]
            assert context.cost(mapping) == plain.cost(mapping)
            # The legacy weight view skips the zero-weight congestion
            # components entirely: bit-identical to the truncated vector.
            truncated = MetricVector(
                ("dynamic_energy",), (vector["dynamic_energy"],)
            )
            weights = {"dynamic_energy": 1.0}
            assert vector.weighted_sum(weights, strict=False) == truncated.weighted_sum(
                weights, strict=False
            )

    def test_chunk_path_matches_scalar_path(self, load_setup):
        cwg, platform, context, mappings = load_setup
        batch = context.evaluate_metrics_batch(mappings)
        for mapping, vector in zip(mappings, batch):
            assert vector.values == context._compute_metrics(mapping).values

    def test_pickle_and_pool_bit_identical(self, load_setup):
        cwg, platform, context, mappings = load_setup
        clone = pickle.loads(pickle.dumps(context))
        serial = context.evaluate_metrics_batch(mappings)
        assert [v.values for v in clone.evaluate_metrics_batch(mappings)] == [
            v.values for v in serial
        ]
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            pooled = context.evaluate_metrics_batch(mappings, backend=pool)
        assert [v.values for v in pooled] == [v.values for v in serial]

    def test_metric_delta_disabled(self, load_setup):
        cwg, platform, context, mappings = load_setup
        assert context.supports_metric_delta is False
        with pytest.raises(NotImplementedError):
            context.metric_delta(mappings[0], 0, 1)
        # The scalar delta stays exact: the cost view is energy-only.
        mapping = mappings[0]
        swapped = mapping.swap_tiles(0, 1)
        assert context.delta(mapping, 0, 1) == pytest.approx(
            context.cost(swapped) - context.cost(mapping)
        )


# ---------------------------------------------------------------------------
# Co-design engine
# ---------------------------------------------------------------------------

CODESIGN_PARAMS = CodesignParameters(population_size=8, generations=3)


def _codesign_search(encoder_workload, backend=None, rng=SEED, **kwargs):
    cdcg, platform = encoder_workload
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
    engine = CodesignSearch(
        cdcg, platform, CODESIGN_PARAMS, backend=backend, **kwargs
    )
    return engine.search(initial=initial, rng=rng)


class TestCodesignEngine:
    def test_result_invariants(self, encoder_workload):
        result = _codesign_search(encoder_workload)
        assert isinstance(result, CodesignResult)
        assert result.front and len(result.front) == len(result.front_routings)
        assert result.best_routing is not None
        expected = CODESIGN_PARAMS.population_size * (
            CODESIGN_PARAMS.generations + 1
        )
        assert result.evaluations == expected
        assert result.tables_certified >= 1
        for point in result.front:
            for key in ("energy", "time", "max_link_utilisation"):
                assert key in point.metrics

    def test_front_routings_are_deadlock_free(self, encoder_workload):
        cdcg, platform = encoder_workload
        result = _codesign_search(encoder_workload)
        for routing in result.front_routings + [result.best_routing]:
            report = validate_deadlock_free(
                platform.mesh, routing, raise_on_cycle=False
            )
            assert report.deadlock_free

    def test_front_points_reprice_identically(self, encoder_workload):
        cdcg, platform = encoder_workload
        result = _codesign_search(encoder_workload)
        for point, routing in zip(result.front, result.front_routings):
            context = CdcmEvaluationContext(
                cdcg, platform.with_routing(routing)
            )
            assert context.metrics(point.mapping) == point.metrics

    def test_seeded_runs_identical(self, encoder_workload):
        first = _codesign_search(encoder_workload, rng=SEED)
        second = _codesign_search(encoder_workload, rng=SEED)
        assert first.best_cost == second.best_cost
        assert first.best_mapping == second.best_mapping
        assert first.best_routing == second.best_routing
        assert first.history == second.history
        assert [p.metrics for p in first.front] == [p.metrics for p in second.front]
        assert [r.digest for r in first.front_routings] == [
            r.digest for r in second.front_routings
        ]

    def test_serial_and_pooled_runs_bit_identical(self, encoder_workload):
        serial = _codesign_search(encoder_workload, backend=SerialBackend())
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            pooled = _codesign_search(encoder_workload, backend=pool)
        assert serial.best_cost == pooled.best_cost
        assert serial.best_mapping == pooled.best_mapping
        assert serial.best_routing == pooled.best_routing
        assert serial.history == pooled.history
        assert serial.evaluations == pooled.evaluations
        assert [p.metrics for p in serial.front] == [p.metrics for p in pooled.front]
        assert [r.digest for r in serial.front_routings] == [
            r.digest for r in pooled.front_routings
        ]

    def test_reject_policy_falls_back_to_parent_tables(self, encoder_workload):
        cdcg, platform = encoder_workload
        result = _codesign_search(
            encoder_workload, certification_policy="reject"
        )
        assert result.tables_repaired == 0
        for routing in result.front_routings:
            assert validate_deadlock_free(
                platform.mesh, routing, raise_on_cycle=False
            ).deadlock_free
        if result.tables_rejected:
            assert len(result.last_witness) >= 2

    def test_invalid_construction(self, encoder_workload):
        cdcg, platform = encoder_workload
        with pytest.raises(ConfigurationError):
            CodesignSearch(None, platform)  # no CDCG, no factory
        with pytest.raises(ConfigurationError):
            CodesignSearch(cdcg, platform, keys=())
        with pytest.raises(ConfigurationError):
            CodesignSearch(cdcg, platform).search(initial=None)
        with pytest.raises(ConfigurationError):
            CodesignSearch(cdcg, platform).search(
                objective="not-a-factory",
                initial=Mapping.random(cdcg.cores(), platform.num_tiles, rng=0),
            )


class TestCertifyBeforePrice:
    def test_every_priced_table_passed_the_gate(
        self, encoder_workload, monkeypatch
    ):
        cdcg, platform = encoder_workload
        validated: set = set()
        real_validate = synthesis_module.validate_deadlock_free

        def recording_validate(topology, routing, raise_on_cycle=True):
            report = real_validate(topology, routing, raise_on_cycle)
            if report.deadlock_free:
                validated.add(routing.digest)
            return report

        monkeypatch.setattr(
            synthesis_module, "validate_deadlock_free", recording_validate
        )

        priced: set = set()

        def recording_factory(routed_platform):
            priced.add(routed_platform.routing.digest)
            return CdcmEvaluationContext(cdcg, routed_platform)

        initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
        engine = CodesignSearch(
            cdcg, platform, CODESIGN_PARAMS, context_factory=recording_factory
        )
        result = engine.search(initial=initial, rng=SEED)
        assert priced, "no pricing contexts were ever created"
        assert priced <= validated, (
            "CodesignSearch priced a table that never passed "
            "validate_deadlock_free"
        )
        assert result.best_routing.digest in validated

    def test_exploding_gate_blocks_all_pricing(
        self, encoder_workload, monkeypatch
    ):
        cdcg, platform = encoder_workload
        synthesizer = TableSynthesizer(platform.mesh)  # seeds gate pre-patch

        def exploding_validate(*args, **kwargs):
            raise RuntimeError("deadlock gate bypassed")

        monkeypatch.setattr(
            synthesis_module, "validate_deadlock_free", exploding_validate
        )
        factory_calls = []

        def counting_factory(routed_platform):
            factory_calls.append(routed_platform.routing.digest)
            return CdcmEvaluationContext(cdcg, routed_platform)

        engine = CodesignSearch(
            cdcg,
            platform,
            CODESIGN_PARAMS,
            synthesizer=synthesizer,
            context_factory=counting_factory,
        )
        initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
        with pytest.raises(RuntimeError, match="deadlock gate bypassed"):
            engine.search(initial=initial, rng=SEED)
        assert factory_calls == [], (
            "pricing contexts were created although certification exploded"
        )


# ---------------------------------------------------------------------------
# CDCM metric extension (satellite regression)
# ---------------------------------------------------------------------------


class TestCdcmMetricExtension:
    def test_component_tuple_is_append_only(self):
        assert CDCM_METRIC_NAMES == (
            "energy",
            "time",
            "dynamic_energy",
            "static_energy",
            "max_link_utilisation",
        )

    def test_metric_vector_reports_schedule_utilisation(
        self, example_cdcg, example_platform
    ):
        evaluator = CdcmEvaluator(example_platform)
        mapping = Mapping.random(example_cdcg.cores(), 4, rng=1)
        report = evaluator.evaluate(example_cdcg, mapping)
        vector = report.metric_vector()
        assert vector.names == CDCM_METRIC_NAMES
        assert vector["max_link_utilisation"] == report.schedule.max_link_utilisation()
        assert 0.0 <= vector["max_link_utilisation"] <= 1.0

    def test_legacy_weight_views_bit_identical(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        mapping = Mapping.random(example_cdcg.cores(), 4, rng=1)
        vector = context.metrics(mapping)
        truncated = MetricVector(CDCM_METRIC_NAMES[:4], vector.values[:4])
        for metric, energy_weight, time_weight in (
            ("energy", 1.0, 0.0),
            ("time", 0.0, 1.0),
            ("weighted", 0.5, 0.5),
        ):
            weights = scalarisation_weights(metric, energy_weight, time_weight)
            assert "max_link_utilisation" not in weights
            assert vector.weighted_sum(weights, strict=False) == truncated.weighted_sum(
                weights, strict=False
            )
        # The default scalar cost is untouched by the new component.
        assert context.cost(mapping) == vector["energy"]

    def test_reproduction_row_costs_unchanged(self, example_cdcg, example_platform):
        # The paper-example optimum is found against the same scalar costs as
        # before the extension: exhaustively verify scalar pricing equals the
        # energy component for every permutation of the 4-tile example.
        from itertools import permutations

        context = CdcmEvaluationContext(example_cdcg, example_platform)
        cores = example_cdcg.cores()
        for perm in permutations(range(4)):
            mapping = Mapping(dict(zip(cores, perm)), num_tiles=4)
            vector = context.metrics(mapping)
            assert len(vector) == 5
            assert context.cost(mapping) == vector["energy"]
