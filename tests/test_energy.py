"""Energy models: bit energy, dynamic, static, totals, technologies."""

import pytest

from repro.core.mapping import Mapping
from repro.energy.bit_energy import bit_energy_per_hop, bit_energy_route
from repro.energy.dynamic import (
    cdcm_dynamic_energy,
    communication_dynamic_energy,
    cwm_dynamic_energy,
    dynamic_energy_breakdown,
)
from repro.energy.static import noc_static_energy, noc_static_power
from repro.energy.technology import (
    TECH_0_07UM,
    TECH_0_35UM,
    TECH_PAPER_EXAMPLE,
    Technology,
    scale_static_power,
)
from repro.energy.totals import EnergyBreakdown, total_energy_cdcm, total_energy_cwm
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.scheduler import CdcmScheduler
from repro.utils.errors import ConfigurationError, MappingError


class TestTechnology:
    def test_paper_example_values(self):
        assert TECH_PAPER_EXAMPLE.e_rbit == 1.0
        assert TECH_PAPER_EXAMPLE.e_lbit == 1.0
        assert TECH_PAPER_EXAMPLE.router_static_power == pytest.approx(0.025)

    def test_deep_submicron_has_lower_switching_higher_leakage(self):
        assert TECH_0_07UM.e_rbit < TECH_0_35UM.e_rbit
        assert TECH_0_07UM.router_static_power > TECH_0_35UM.router_static_power

    def test_bit_energy_single_hop(self):
        tech = Technology("t", 0.1, 2.0, 1.0, 0.5, 0.0)
        assert tech.bit_energy_single_hop == pytest.approx(3.5)

    def test_describe(self):
        assert "ERbit" in TECH_0_35UM.describe()

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Technology("bad", 0.0, 1.0, 1.0, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            Technology("bad", 0.1, -1.0, 1.0, 0.0, 0.0)

    def test_scale_static_power(self):
        doubled = scale_static_power(TECH_0_07UM, 2.0)
        assert doubled.router_static_power == pytest.approx(
            2.0 * TECH_0_07UM.router_static_power
        )
        assert doubled.e_rbit == TECH_0_07UM.e_rbit
        with pytest.raises(ConfigurationError):
            scale_static_power(TECH_0_07UM, -1.0)


class TestBitEnergy:
    def test_per_hop_equation1(self):
        assert bit_energy_per_hop(TECH_PAPER_EXAMPLE) == pytest.approx(2.0)

    def test_route_equation2(self):
        # K routers, K-1 links: with ERbit = ELbit = 1 and no local term the
        # energy is 2K - 1 per bit.
        for hops in range(1, 6):
            assert bit_energy_route(TECH_PAPER_EXAMPLE, hops) == pytest.approx(
                2 * hops - 1
            )

    def test_local_links_add_two_ecbit(self):
        tech = Technology("t", 0.1, 1.0, 1.0, 0.25, 0.0)
        with_local = bit_energy_route(tech, 3, include_local=True)
        without_local = bit_energy_route(tech, 3, include_local=False)
        assert with_local - without_local == pytest.approx(0.5)

    def test_invalid_hop_count(self):
        with pytest.raises(ConfigurationError):
            bit_energy_route(TECH_PAPER_EXAMPLE, 0)


class TestStaticEnergy:
    def test_power_equation5(self):
        assert noc_static_power(TECH_PAPER_EXAMPLE, 4) == pytest.approx(0.1)

    def test_energy_equation9(self):
        assert noc_static_energy(TECH_PAPER_EXAMPLE, 4, 100.0) == pytest.approx(10.0)

    def test_zero_execution_time(self):
        assert noc_static_energy(TECH_PAPER_EXAMPLE, 4, 0.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            noc_static_power(TECH_PAPER_EXAMPLE, 0)
        with pytest.raises(ConfigurationError):
            noc_static_energy(TECH_PAPER_EXAMPLE, 4, -1.0)


class TestDynamicEnergy:
    def test_communication_energy(self):
        assert communication_dynamic_energy(10, 3, TECH_PAPER_EXAMPLE) == pytest.approx(
            50.0
        )

    def test_cwm_matches_paper_value(self, example_cdcg, example_platform, example_mappings):
        cwg = cdcg_to_cwg(example_cdcg)
        energy = cwm_dynamic_energy(cwg, example_mappings["c"], example_platform)
        assert energy == pytest.approx(390.0)

    def test_cwm_accepts_plain_dict(self, example_cdcg, example_platform, example_mappings):
        cwg = cdcg_to_cwg(example_cdcg)
        as_dict = example_mappings["c"].assignments()
        assert cwm_dynamic_energy(cwg, as_dict, example_platform) == pytest.approx(390.0)

    def test_cwm_missing_core(self, example_cdcg, example_platform):
        cwg = cdcg_to_cwg(example_cdcg)
        with pytest.raises(MappingError):
            cwm_dynamic_energy(cwg, {"A": 0}, example_platform)

    def test_cdcm_matches_cwm_for_same_mapping(
        self, example_cdcg, example_platform, example_mappings
    ):
        schedule = CdcmScheduler(example_platform).schedule(
            example_cdcg, example_mappings["c"]
        )
        cdcm = cdcm_dynamic_energy(schedule, example_platform.technology)
        cwg = cdcg_to_cwg(example_cdcg)
        cwm = cwm_dynamic_energy(cwg, example_mappings["c"], example_platform)
        assert cdcm == pytest.approx(cwm)

    def test_breakdown_sums_to_total(
        self, example_cdcg, example_platform, example_mappings
    ):
        schedule = CdcmScheduler(example_platform).schedule(
            example_cdcg, example_mappings["d"]
        )
        breakdown = dynamic_energy_breakdown(schedule, example_platform.technology)
        assert sum(breakdown.values()) == pytest.approx(
            cdcm_dynamic_energy(schedule, example_platform.technology)
        )


class TestTotals:
    def test_breakdown_properties(self):
        breakdown = EnergyBreakdown(
            dynamic=80.0, static=20.0, execution_time=50.0, technology_name="x"
        )
        assert breakdown.total == pytest.approx(100.0)
        assert breakdown.static_fraction == pytest.approx(0.2)
        assert "x" in breakdown.describe()

    def test_zero_total_fraction(self):
        breakdown = EnergyBreakdown(0.0, 0.0, None, "x")
        assert breakdown.static_fraction == 0.0

    def test_cdcm_total_equation10(
        self, example_cdcg, example_platform, example_mappings
    ):
        schedule = CdcmScheduler(example_platform).schedule(
            example_cdcg, example_mappings["c"]
        )
        breakdown = total_energy_cdcm(schedule, example_platform)
        assert breakdown.total == pytest.approx(400.0)
        assert breakdown.execution_time == pytest.approx(100.0)

    def test_cdcm_reprice_under_other_technology(
        self, example_cdcg, example_platform, example_mappings
    ):
        schedule = CdcmScheduler(example_platform).schedule(
            example_cdcg, example_mappings["c"]
        )
        repriced = total_energy_cdcm(schedule, example_platform, TECH_0_07UM)
        assert repriced.technology_name == "0.07um"
        assert repriced.dynamic != pytest.approx(390.0)

    def test_cwm_total_has_no_static_term(
        self, example_cdcg, example_platform, example_mappings
    ):
        cwg = cdcg_to_cwg(example_cdcg)
        breakdown = total_energy_cwm(cwg, example_mappings["c"], example_platform)
        assert breakdown.static == 0.0
        assert breakdown.execution_time is None
        assert breakdown.total == pytest.approx(breakdown.dynamic)
