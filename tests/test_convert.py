"""CDCG -> CWG collapse (repro.graphs.convert)."""

import pytest

from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg, check_consistent
from repro.graphs.cwg import CWG
from repro.utils.errors import GraphValidationError


class TestCdcgToCwg:
    def test_paper_example_volumes(self, example_cdcg):
        cwg = cdcg_to_cwg(example_cdcg)
        assert cwg.weight("A", "B") == 15
        assert cwg.weight("A", "F") == 15
        assert cwg.weight("B", "F") == 40
        assert cwg.weight("E", "A") == 35  # two packets: 20 + 15
        assert cwg.weight("F", "B") == 15
        assert cwg.num_communications == 5

    def test_core_set_preserved(self, example_cdcg):
        cwg = cdcg_to_cwg(example_cdcg)
        assert set(cwg.cores) == set(example_cdcg.cores())

    def test_total_bits_preserved(self, example_cdcg):
        assert cdcg_to_cwg(example_cdcg).total_bits() == example_cdcg.total_bits()

    def test_name_override(self, example_cdcg):
        assert cdcg_to_cwg(example_cdcg, name="renamed").name == "renamed"

    def test_explicit_isolated_core_kept(self):
        cdcg = CDCG("x")
        cdcg.add_core("idle")
        cdcg.add_packet("p", "a", "b", 1.0, 10)
        cwg = cdcg_to_cwg(cdcg)
        assert "idle" in cwg


class TestCheckConsistent:
    def test_accepts_derived_cwg(self, example_cdcg):
        check_consistent(example_cdcg, cdcg_to_cwg(example_cdcg))

    def test_rejects_missing_core(self, example_cdcg):
        cwg = CWG("bad")
        cwg.add_communication("A", "B", 15)
        with pytest.raises(GraphValidationError):
            check_consistent(example_cdcg, cwg)

    def test_rejects_wrong_volume(self, example_cdcg):
        cwg = cdcg_to_cwg(example_cdcg)
        cwg.add_communication("A", "B", 1)  # now 16 instead of 15
        with pytest.raises(GraphValidationError):
            check_consistent(example_cdcg, cwg)
