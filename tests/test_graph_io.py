"""Graph serialisation (repro.graphs.io)."""

import json

import pytest

from repro.graphs.io import (
    cdcg_from_dict,
    cdcg_to_dict,
    cdcg_to_dot,
    crg_to_dot,
    cwg_from_dict,
    cwg_to_dict,
    cwg_to_dot,
    load_cdcg_json,
    load_cwg_json,
    save_json,
)
from repro.noc.topology import build_mesh_crg
from repro.utils.errors import GraphValidationError


class TestCwgRoundTrip:
    def test_dict_round_trip(self, example_cwg):
        restored = cwg_from_dict(cwg_to_dict(example_cwg))
        assert restored == example_cwg

    def test_json_file_round_trip(self, example_cwg, tmp_path):
        path = tmp_path / "app.cwg.json"
        save_json(example_cwg, path)
        restored = load_cwg_json(path)
        assert restored == example_cwg

    def test_wrong_type_rejected(self, example_cdcg):
        with pytest.raises(GraphValidationError):
            cwg_from_dict(cdcg_to_dict(example_cdcg))

    def test_dict_is_json_serialisable(self, example_cwg):
        json.dumps(cwg_to_dict(example_cwg))


class TestCdcgRoundTrip:
    def test_dict_round_trip(self, example_cdcg):
        restored = cdcg_from_dict(cdcg_to_dict(example_cdcg))
        assert restored.num_packets == example_cdcg.num_packets
        assert restored.num_dependences == example_cdcg.num_dependences
        assert restored.total_bits() == example_cdcg.total_bits()
        assert set(restored.dependences()) == set(example_cdcg.dependences())

    def test_json_file_round_trip(self, example_cdcg, tmp_path):
        path = tmp_path / "app.cdcg.json"
        save_json(example_cdcg, path)
        restored = load_cdcg_json(path)
        assert restored.packet("EA1").bits == 20
        assert restored.packet("EA1").computation_time == 10.0

    def test_wrong_type_rejected(self, example_cwg):
        with pytest.raises(GraphValidationError):
            cdcg_from_dict(cwg_to_dict(example_cwg))


class TestSaveJsonErrors:
    def test_unsupported_object(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(object(), tmp_path / "x.json")


class TestDotExport:
    def test_cwg_dot_contains_edges(self, example_cwg):
        dot = cwg_to_dot(example_cwg)
        assert dot.startswith("digraph")
        assert '"A" -> "B" [label="15"]' in dot

    def test_cdcg_dot_contains_start_end(self, example_cdcg):
        dot = cdcg_to_dot(example_cdcg)
        assert '"Start"' in dot
        assert '"End"' in dot
        assert '"EA1" -> "EA2"' in dot

    def test_crg_dot_contains_tiles(self):
        dot = crg_to_dot(build_mesh_crg(2, 2))
        assert '"tau0"' in dot
        assert '"tau0" -> "tau1"' in dot
