"""Tests for the NSGA-III reference-point search engine.

Covers the many-objective acceptance properties of the co-design PR:

* the Das–Dennis lattice has the closed-form size, sums to one and comes in
  a deterministic order;
* association and niching are fully deterministic (index tie-breaks), so
  seeded runs are bit-identical — including between
  :class:`~repro.eval.parallel.SerialBackend` and
  :class:`~repro.eval.parallel.ProcessPoolBackend`, extending the PR 4
  determinism matrix to the new engine;
* the returned front is mutually non-dominated under three keys (the
  energy × time × congestion trade-off introduced by this PR);
* registry and parameter plumbing behave like every other engine.

Worker count for the pool tests comes from ``REPRO_TEST_N_WORKERS``
(default 2), mirroring ``tests/test_parallel.py``.
"""

from __future__ import annotations

import math
import os
from math import comb

import pytest

from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.eval.context import CdcmEvaluationContext
from repro.eval.parallel import ProcessPoolBackend, SerialBackend
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search import available_searchers, get_searcher
from repro.search.nsga3 import (
    NSGA3Search,
    Nsga3Parameters,
    associate_to_references,
    das_dennis_reference_points,
    default_divisions,
    niche_select,
)
from repro.utils.errors import ConfigurationError
from repro.workloads.embedded import image_encoder

N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

SEED = 20050307
KEYS = ("energy", "time", "max_link_utilisation")
PARAMS = Nsga3Parameters(population_size=12, generations=6)


@pytest.fixture(scope="module")
def encoder_workload():
    """The image-encoder CDCG on a 3x3 mesh — the many-objective workload."""
    cdcg = image_encoder()
    platform = Platform(mesh=Mesh(3, 3))
    return cdcg, platform


def _encoder_search(encoder_workload, backend=None, rng=SEED, params=PARAMS):
    cdcg, platform = encoder_workload
    context = CdcmEvaluationContext(cdcg, platform)
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
    engine = NSGA3Search(params, keys=KEYS, backend=backend)
    return engine.search(context, initial, rng=rng)


class TestParameters:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(population_size=3)
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(generations=0)
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(tournament_size=0)
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(crossover_rate=1.5)
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(mutation_rate=-0.1)
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(divisions=0)
        with pytest.raises(ConfigurationError):
            Nsga3Parameters(n_workers=0)

    def test_unknown_front_keys_rejected(self, example_cdcg, example_platform):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=0)
        engine = NSGA3Search(PARAMS, keys=("energy", "latency"))
        with pytest.raises(ConfigurationError):
            engine.search(context, initial, rng=0)

    def test_empty_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            NSGA3Search(PARAMS, keys=())


class TestReferencePoints:
    def test_lattice_size_is_closed_form(self):
        for objectives, divisions in ((2, 4), (3, 4), (3, 6), (4, 3)):
            points = das_dennis_reference_points(objectives, divisions)
            assert len(points) == comb(divisions + objectives - 1, objectives - 1)
            assert len(set(points)) == len(points)

    def test_points_live_on_the_simplex(self):
        for point in das_dennis_reference_points(3, 5):
            assert sum(point) == pytest.approx(1.0)
            assert all(coordinate >= 0.0 for coordinate in point)

    def test_order_is_deterministic_lexicographic(self):
        points = das_dennis_reference_points(2, 2)
        assert points == ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))

    def test_default_divisions_covers_population(self):
        for objectives, population in ((2, 16), (3, 12), (3, 91), (4, 8)):
            divisions = default_divisions(objectives, population)
            assert (
                len(das_dennis_reference_points(objectives, divisions))
                >= population
            )
            if divisions > 1:
                assert (
                    len(das_dennis_reference_points(objectives, divisions - 1))
                    < population
                )

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            das_dennis_reference_points(0, 3)
        with pytest.raises(ConfigurationError):
            das_dennis_reference_points(3, 0)


class TestAssociationAndNiching:
    def test_association_picks_perpendicular_nearest(self):
        references = ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))
        normalised = {0: (1.0, 0.05), 1: (0.5, 0.45), 2: (0.0, 0.9)}
        association = associate_to_references(normalised, references)
        assert association[0][0] == 0
        assert association[1][0] == 1
        assert association[2][0] == 2
        # A point on its reference direction has zero perpendicular distance.
        on_axis = associate_to_references({0: (0.7, 0.0)}, references)
        assert on_axis[0] == (0, pytest.approx(0.0))

    def test_niche_select_prefers_empty_niches(self):
        vectors = [
            MetricVector(("energy", "time"), pair)
            for pair in ((1.0, 0.0), (0.9, 0.1), (0.45, 0.55), (0.0, 1.0))
        ]
        references = ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))
        # Index 0 is accepted and crowds the (1, 0)-direction niche, which
        # spill index 1 also maps to; the diagonal niche is empty and has
        # the lower reference index of the two empty ones, so its candidate
        # (the middle point, index 2) must win the single slot.
        chosen = niche_select(
            [0], [1, 2, 3], vectors, ("energy", "time"), references, 1
        )
        assert chosen == [2]

    def test_niche_select_is_deterministic_and_fills_slots(self):
        vectors = [
            MetricVector(("energy", "time"), (float(i), 10.0 - i))
            for i in range(8)
        ]
        references = das_dennis_reference_points(2, 4)
        first = niche_select([0, 1], [2, 3, 4, 5, 6, 7], vectors, ("energy", "time"), references, 4)
        second = niche_select([0, 1], [2, 3, 4, 5, 6, 7], vectors, ("energy", "time"), references, 4)
        assert first == second
        assert len(first) == 4
        assert len(set(first)) == 4


class TestFrontInvariants:
    def test_front_is_mutually_non_dominated(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        assert result.front, "NSGA-III returned an empty front"
        for a in result.front:
            for b in result.front:
                if a is not b:
                    assert not a.metrics.dominates(b.metrics, KEYS)

    def test_front_points_reprice_identically(self, encoder_workload):
        cdcg, platform = encoder_workload
        result = _encoder_search(encoder_workload)
        context = CdcmEvaluationContext(cdcg, platform)
        for point in result.front:
            assert context.metrics(point.mapping) == point.metrics

    def test_congestion_key_is_priced(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        for point in result.front:
            assert 0.0 <= point.metrics["max_link_utilisation"] <= 1.0

    def test_evaluation_budget_is_mu_plus_lambda(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        expected = PARAMS.population_size * (PARAMS.generations + 1)
        assert result.evaluations == expected

    def test_scalar_reporting_matches_weight_view(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        assert result.best_metrics is not None
        assert result.best_cost == result.best_metrics["energy"]
        evals, final_cost = result.history[-1]
        assert final_cost == result.best_cost
        assert evals <= result.evaluations


class TestDeterminism:
    def test_seeded_runs_identical(self, encoder_workload):
        first = _encoder_search(encoder_workload, rng=SEED)
        second = _encoder_search(encoder_workload, rng=SEED)
        assert first.best_cost == second.best_cost
        assert first.best_mapping == second.best_mapping
        assert first.history == second.history
        assert [p.metrics for p in first.front] == [p.metrics for p in second.front]
        assert [p.mapping for p in first.front] == [p.mapping for p in second.front]

    def test_serial_and_pooled_runs_bit_identical(self, encoder_workload):
        serial = _encoder_search(encoder_workload, backend=SerialBackend())
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            pooled = _encoder_search(encoder_workload, backend=pool)
        assert serial.best_cost == pooled.best_cost
        assert serial.best_mapping == pooled.best_mapping
        assert serial.history == pooled.history
        assert serial.evaluations == pooled.evaluations
        assert [p.metrics for p in serial.front] == [p.metrics for p in pooled.front]
        assert [p.mapping for p in serial.front] == [p.mapping for p in pooled.front]

    def test_n_workers_knob_owns_and_releases_pool(self, encoder_workload):
        serial = _encoder_search(encoder_workload)
        with NSGA3Search(PARAMS, keys=KEYS, n_workers=2) as engine:
            cdcg, platform = encoder_workload
            context = CdcmEvaluationContext(cdcg, platform)
            initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
            pooled = engine.search(context, initial, rng=SEED)
            assert engine._owned_backend is not None
        assert engine._owned_backend is None
        assert pooled.best_cost == serial.best_cost
        assert [p.metrics for p in pooled.front] == [
            p.metrics for p in serial.front
        ]


class TestRegistryIntegration:
    def test_registered_names(self):
        names = available_searchers()
        assert "nsga3" in names
        assert "nsga-iii" in names
        assert isinstance(get_searcher("nsga3"), NSGA3Search)
        assert isinstance(get_searcher("nsga-iii"), NSGA3Search)

    def test_kwargs_forwarded(self):
        engine = get_searcher("nsga3", keys=KEYS, n_workers=3)
        assert engine.keys == KEYS
        assert engine.parameters.n_workers == 3

    def test_default_keys_fall_back_like_nsga2(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        engine = NSGA3Search(Nsga3Parameters(population_size=6, generations=2))
        assert engine._resolve_keys(context) == ("energy", "time")
