"""Vector objectives and Pareto fronts (repro.core.metrics / repro.analysis.pareto).

Covers the three invariants of the vector-objective redesign:

* the non-dominated filter is correct on hand-built fronts;
* a weight-sweep front is a subset of the exhaustive front on the paper's
  worked example (supported points are non-dominated);
* the scalarised view and the legacy-objective compatibility shims are
  bit-identical to the seed single-expression objectives, and sweeping many
  weight vectors over a priced population performs at most one full pricing
  pass per unique candidate.
"""

from itertools import permutations

import pytest

from repro.analysis.pareto import (
    ParetoPoint,
    dominates,
    front_to_rows,
    hypervolume,
    metric_points,
    non_dominated,
    pareto_front,
    weight_grid,
    weight_sweep_front,
)
from repro.core.cdcm import CdcmEvaluator
from repro.core.cwm import CwmEvaluator
from repro.core.framework import FRWFramework
from repro.core.mapping import Mapping
from repro.core.metrics import (
    CDCM_METRIC_NAMES,
    MetricVector,
    scalarisation_weights,
    validate_weights,
)
from repro.core.objective import (
    CountingObjective,
    ScalarisedObjective,
    cdcm_objective,
    cwm_objective,
)
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.graphs.convert import cdcg_to_cwg
from repro.search.base import as_objective, objective_metrics
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.search.random_search import RandomSearch
from repro.utils.errors import ConfigurationError


def _point(index: int, energy: float, time: float) -> ParetoPoint:
    """A ParetoPoint with a throwaway distinct mapping."""
    mapping = Mapping({"a": index}, num_tiles=64)
    return ParetoPoint(
        mapping=mapping,
        metrics=MetricVector(("energy", "time"), (energy, time)),
    )


def _all_mappings(cores, num_tiles):
    return [
        Mapping(dict(zip(cores, assignment)), num_tiles=num_tiles)
        for assignment in permutations(range(num_tiles), len(cores))
    ]


class TestMetricVector:
    def test_mapping_like_access(self):
        vector = MetricVector(("energy", "time"), (400.0, 100.0))
        assert vector["energy"] == 400.0
        assert vector[1] == 100.0
        assert vector.get("time") == 100.0
        assert vector.get("missing") is None
        assert "time" in vector and "missing" not in vector
        assert len(vector) == 2
        assert list(vector) == ["energy", "time"]
        assert vector.as_dict() == {"energy": 400.0, "time": 100.0}
        assert dict(vector.items()) == vector.as_dict()
        with pytest.raises(KeyError):
            vector["missing"]

    def test_equality_and_hash(self):
        a = MetricVector(("energy",), (1.0,))
        b = MetricVector(("energy",), (1.0,))
        c = MetricVector(("energy",), (2.0,))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            MetricVector(("energy",), (1.0, 2.0))
        with pytest.raises(ConfigurationError):
            MetricVector(("energy", "energy"), (1.0, 2.0))

    def test_weighted_sum_unit_weight_is_exact(self):
        # 1.0 * v must be v bit-for-bit — the shim bit-identity property.
        value = 123.456789e-7
        vector = MetricVector(("energy", "time"), (value, 99.0))
        assert vector.weighted_sum({"energy": 1.0}) == value

    def test_weighted_sum_two_terms_matches_expression(self):
        vector = MetricVector(("energy", "time"), (400.0, 90.0))
        assert vector.weighted_sum({"energy": 0.7, "time": 0.3}) == (
            0.7 * 400.0 + 0.3 * 90.0
        )

    def test_weighted_sum_strictness(self):
        vector = MetricVector(("energy",), (1.0,))
        with pytest.raises(ConfigurationError):
            vector.weighted_sum({"nope": 1.0})
        assert vector.weighted_sum({"nope": 1.0}, strict=False) == 0.0

    def test_dominates(self):
        a = MetricVector(("energy", "time"), (1.0, 2.0))
        b = MetricVector(("energy", "time"), (1.0, 3.0))
        c = MetricVector(("energy", "time"), (0.5, 9.0))
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)
        assert not a.dominates(a)
        assert c.dominates(a, keys=("energy",))

    def test_validate_weights(self):
        assert validate_weights({"energy": 2}, ("energy", "time")) == {
            "energy": 2.0
        }
        with pytest.raises(ConfigurationError):
            validate_weights({}, ("energy",))
        with pytest.raises(ConfigurationError):
            validate_weights({"bogus": 1.0}, ("energy",))
        with pytest.raises(ConfigurationError):
            validate_weights({"energy": 0.0}, ("energy",))
        with pytest.raises(ConfigurationError):
            validate_weights({"energy": float("nan")}, ("energy",))

    def test_scalarisation_weights_legacy_mapping(self):
        assert scalarisation_weights("energy") == {"energy": 1.0}
        assert scalarisation_weights("time") == {"time": 1.0}
        assert scalarisation_weights("weighted", 0.7, 0.3) == {
            "energy": 0.7,
            "time": 0.3,
        }
        with pytest.raises(ConfigurationError):
            scalarisation_weights("bogus")


class TestNonDominated:
    def test_hand_built_front(self):
        points = [
            _point(0, 1.0, 9.0),
            _point(1, 2.0, 8.0),
            _point(2, 5.0, 5.0),
            _point(3, 2.0, 9.0),  # dominated by (2, 8)
            _point(4, 6.0, 5.0),  # dominated by (5, 5)
            _point(5, 9.0, 1.0),
        ]
        front = non_dominated(points)
        assert [(p.metrics["energy"], p.metrics["time"]) for p in front] == [
            (1.0, 9.0),
            (2.0, 8.0),
            (5.0, 5.0),
            (9.0, 1.0),
        ]

    def test_duplicate_positions_keep_first(self):
        points = [_point(0, 3.0, 3.0), _point(1, 3.0, 3.0)]
        front = non_dominated(points)
        assert len(front) == 1
        assert front[0].mapping is points[0].mapping

    def test_weak_domination_is_strict_domination(self):
        points = [_point(0, 3.0, 3.0), _point(1, 3.0, 4.0)]
        assert dominates(points[0].metrics, points[1].metrics)
        assert [p.mapping for p in non_dominated(points)] == [points[0].mapping]

    def test_single_point_survives(self):
        points = [_point(0, 1.0, 1.0)]
        assert non_dominated(points) == points

    def test_requires_keys(self):
        with pytest.raises(ConfigurationError):
            non_dominated([_point(0, 1.0, 1.0)], keys=())


class TestScalarisedBitIdentity:
    """Scalarised views and shims reproduce the seed objectives exactly."""

    def _mappings(self, cdcg, count=10):
        return [Mapping.random(cdcg.cores(), 4, rng=seed) for seed in range(count)]

    def test_cwm_shim_matches_evaluator(self, example_cdcg, example_platform):
        cwg = cdcg_to_cwg(example_cdcg)
        objective = cwm_objective(cwg, example_platform)
        evaluator = CwmEvaluator(example_platform)
        for mapping in self._mappings(example_cdcg):
            assert objective(mapping) == evaluator.cost(cwg, mapping)

    @pytest.mark.parametrize(
        "metric,energy_weight,time_weight",
        [("energy", 1.0, 0.0), ("time", 1.0, 0.0), ("weighted", 0.7, 0.3)],
    )
    def test_cdcm_shim_matches_seed_expression(
        self, example_cdcg, example_platform, metric, energy_weight, time_weight
    ):
        objective = cdcm_objective(
            example_cdcg,
            example_platform,
            metric=metric,
            energy_weight=energy_weight,
            time_weight=time_weight,
        )
        evaluator = CdcmEvaluator(example_platform)
        for mapping in self._mappings(example_cdcg, count=5):
            report = evaluator.evaluate(example_cdcg, mapping)
            if metric == "energy":
                seed_cost = report.total_energy
            elif metric == "time":
                seed_cost = report.execution_time
            else:
                seed_cost = (
                    energy_weight * report.total_energy
                    + time_weight * report.execution_time
                )
            assert objective(mapping) == seed_cost

    def test_scalarised_view_matches_context_cost(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        view = ScalarisedObjective(context, {"energy": 1.0})
        for mapping in self._mappings(example_cdcg, count=5):
            assert view(mapping) == context.cost(mapping)

    def test_scalarised_cwm_delta_is_weighted_component_delta(
        self, example_cdcg, example_platform
    ):
        cwg = cdcg_to_cwg(example_cdcg)
        context = CwmEvaluationContext(cwg, example_platform)
        view = ScalarisedObjective(context, {"dynamic_energy": 2.5})
        assert view.supports_delta
        mapping = Mapping.random(example_cdcg.cores(), 4, rng=7)
        raw = context.delta(mapping, 0, 3)
        assert view.delta(mapping, 0, 3) == 2.5 * raw
        assert view.delta_evaluations == 1

    def test_comparison_rows_stable_under_redesign(
        self, example_cdcg, example_platform
    ):
        # The ComparisonConfig path must keep producing the exact numbers the
        # pre-vector engine produced for the paper example (pinned by
        # tests/test_analysis.py too); two runs here guard determinism of the
        # shim route itself.
        from repro.analysis.comparison import ComparisonConfig, compare_models

        first = compare_models(
            example_cdcg, example_platform, ComparisonConfig(method="exhaustive"),
            seed=3,
        )
        second = compare_models(
            example_cdcg, example_platform, ComparisonConfig(method="exhaustive"),
            seed=3,
        )
        assert first.cwm_outcome.cost == second.cwm_outcome.cost
        assert first.cdcm_outcome.cost == second.cdcm_outcome.cost
        assert first.cwm_mapping == second.cwm_mapping
        assert first.cdcm_mapping == second.cdcm_mapping
        assert [r.energy_saving for r in first.technology_results] == [
            r.energy_saving for r in second.technology_results
        ]


class TestWeightSweep:
    def test_sweep_front_is_subset_of_exhaustive_front(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        candidates = _all_mappings(example_cdcg.cores(), 4)
        exhaustive = pareto_front(context, candidates)
        sweep = weight_sweep_front(context, candidates, weights=8)
        exhaustive_positions = {
            (p.metrics["energy"], p.metrics["time"]) for p in exhaustive
        }
        assert sweep.front  # the sweep found at least one supported point
        for point in sweep.front:
            assert (
                point.metrics["energy"],
                point.metrics["time"],
            ) in exhaustive_positions

    def test_sweep_prices_each_unique_candidate_once(
        self, example_cdcg, example_platform
    ):
        # The acceptance property: sweeping 16 weight vectors over a priced
        # GA population performs <= 1 full pricing pass per unique candidate.
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        objective = CountingObjective(
            context.cost, name=context.name, context=context
        )
        initial = Mapping.random(example_cdcg.cores(), 4, rng=1)
        GeneticSearch(
            GeneticParameters(population_size=8, generations=3)
        ).search(objective, initial, rng=5)
        population = [
            Mapping.random(example_cdcg.cores(), 4, rng=seed)
            for seed in range(12)
        ]
        objective.evaluate_batch(population)  # the "priced GA population"

        priced = context.cache_info().misses
        full_evaluations = objective.evaluations
        sweep = weight_sweep_front(objective, population, weights=16)
        # 16 weight vectors later: zero additional pricing passes, zero
        # additional full evaluations charged to the objective.
        assert context.cache_info().misses == priced
        assert objective.evaluations == full_evaluations
        assert len(sweep.selections) == 16

        # On a cold context the same sweep costs exactly one pricing pass per
        # unique candidate, and a repeat sweep costs none.
        cold = CdcmEvaluationContext(example_cdcg, example_platform)
        unique = len(set(population))
        weight_sweep_front(cold, population, weights=16)
        assert cold.cache_info().misses == unique
        weight_sweep_front(cold, population, weights=16)
        assert cold.cache_info().misses == unique

    def test_sweep_endpoints_hit_single_metric_optima(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        candidates = _all_mappings(example_cdcg.cores(), 4)
        sweep = weight_sweep_front(context, candidates, weights=5)
        energies = [p.metrics["energy"] for p in sweep.points]
        times = [p.metrics["time"] for p in sweep.points]
        # First weight vector is all-energy, last is all-time.
        assert sweep.selections[0].metrics["energy"] == min(energies)
        assert sweep.selections[-1].metrics["time"] == min(times)

    def test_weight_grid_shape(self):
        grid = weight_grid(3)
        assert grid == [
            {"energy": 1.0, "time": 0.0},
            {"energy": 0.5, "time": 0.5},
            {"energy": 0.0, "time": 1.0},
        ]
        with pytest.raises(ConfigurationError):
            weight_grid(1)
        with pytest.raises(ConfigurationError):
            weight_grid(4, keys=("a",))

    def test_sweep_rejects_weights_outside_keys(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        candidates = _all_mappings(example_cdcg.cores(), 4)[:4]
        with pytest.raises(ConfigurationError):
            weight_sweep_front(
                context, candidates, weights=[{"static_energy": 1.0}]
            )

    def test_front_to_rows_exports_metrics_and_weights(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        candidates = _all_mappings(example_cdcg.cores(), 4)[:6]
        sweep = weight_sweep_front(context, candidates, weights=4)
        rows = front_to_rows(sweep.front, keys=("energy", "time"))
        assert rows
        for row in rows:
            assert set(row) == {"mapping", "energy", "time", "weights"}
            assert sorted(row["mapping"]) == sorted(example_cdcg.cores())

    def test_metric_points_accepts_counting_objective(
        self, example_cdcg, example_platform, example_mappings
    ):
        objective = cdcm_objective(example_cdcg, example_platform)
        points = metric_points(objective, list(example_mappings.values()))
        assert len(points) == 2
        assert {p.metrics.names for p in points} == {CDCM_METRIC_NAMES}

    def test_metric_points_rejects_plain_callables(self, example_mappings):
        with pytest.raises(ConfigurationError):
            metric_points(lambda m: 0.0, list(example_mappings.values()))


class TestSearchIntegration:
    def test_search_results_carry_metric_breakdown(
        self, example_cdcg, example_platform
    ):
        framework = FRWFramework(example_cdcg, example_platform)
        outcome = framework.map(model="cdcm", method="exhaustive", seed=1)
        breakdown = outcome.search.best_metrics
        assert breakdown is not None
        assert breakdown.names == CDCM_METRIC_NAMES
        assert breakdown["energy"] == outcome.cost
        assert outcome.search.metric("time") == breakdown["time"]
        assert outcome.search.metric_breakdown == breakdown.as_dict()

    def test_plain_callable_results_have_no_breakdown(self, example_mappings):
        result = RandomSearch(samples=3).search(
            lambda mapping: 0.0, example_mappings["c"], rng=0
        )
        assert result.best_metrics is None
        assert result.metric_breakdown is None
        with pytest.raises(ConfigurationError):
            result.metric("energy")

    def test_engines_accept_context_spec(self, example_cdcg, example_platform):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=2)
        result = RandomSearch(samples=5).search(context, initial, rng=3)
        assert result.best_cost == context.cost(result.best_mapping)
        assert result.best_metrics is not None

    def test_engines_accept_weighted_spec(self, example_cdcg, example_platform):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=2)
        result = RandomSearch(samples=5).search(
            (context, {"time": 1.0}), initial, rng=3
        )
        # Minimising the time view: the best cost is the best texec seen.
        assert result.best_cost == result.best_metrics["time"]

    def test_as_objective_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            as_objective(object())

    def test_objective_metrics_prefers_uncounted_context_path(
        self, example_cdcg, example_platform, example_mappings
    ):
        objective = cdcm_objective(example_cdcg, example_platform)
        vector = objective_metrics(objective, example_mappings["d"])
        assert vector is not None
        assert vector["energy"] == pytest.approx(399.0)
        assert objective.evaluations == 0  # breakdown never perturbs counters

    def test_framework_weighted_objective_and_metrics(
        self, example_cdcg, example_platform, example_mappings
    ):
        framework = FRWFramework(example_cdcg, example_platform)
        view = framework.objective("cdcm", weights={"energy": 0.5, "time": 0.5})
        assert isinstance(view, ScalarisedObjective)
        mapping = example_mappings["d"]
        vector = framework.metrics(mapping, model="cdcm")
        assert view.with_weights({"time": 1.0})(mapping) == vector["time"]
        batch = framework.evaluate_metrics_batch([mapping], model="cdcm")
        assert batch == [vector]


def _nd_point(index: int, names, values) -> ParetoPoint:
    """A ParetoPoint with an arbitrary-dimension metric vector."""
    return ParetoPoint(
        mapping=Mapping({"a": index}, num_tiles=256),
        metrics=MetricVector(tuple(names), tuple(values)),
    )


class TestHypervolume:
    """The dominated-hypervolume indicator, two-key base and n-key recursion."""

    KEYS3 = ("energy", "time", "load")

    def test_two_key_rectangle(self):
        point = _point(0, 1.0, 1.0)
        assert hypervolume([point], reference={"energy": 3.0, "time": 2.0}) == 2.0

    def test_two_key_staircase(self):
        points = [_point(0, 1.0, 3.0), _point(1, 2.0, 1.0)]
        reference = {"energy": 4.0, "time": 4.0}
        # (4-1)*(4-3) + (4-2)*(3-1) = 3 + 4
        assert hypervolume(points, reference=reference) == 7.0

    def test_empty_set_and_default_reference(self):
        assert hypervolume([]) == 0.0
        # Componentwise max over the set: each boundary point touches the
        # reference in one coordinate, so only interior points gain area.
        points = [_point(0, 1.0, 3.0), _point(1, 2.0, 2.0), _point(2, 3.0, 1.0)]
        assert hypervolume(points) == (3.0 - 2.0) * (3.0 - 2.0)

    def test_single_key_rejected(self):
        with pytest.raises(ConfigurationError):
            hypervolume([_point(0, 1.0, 1.0)], keys=("energy",))

    def test_three_key_unit_cube(self):
        point = _nd_point(0, self.KEYS3, (0.0, 0.0, 0.0))
        assert (
            hypervolume([point], reference=(1.0, 1.0, 1.0), keys=self.KEYS3) == 1.0
        )

    def test_three_key_union_of_boxes(self):
        points = [
            _nd_point(0, self.KEYS3, (0.0, 1.0, 1.0)),
            _nd_point(1, self.KEYS3, (1.0, 0.0, 0.0)),
        ]
        # Boxes to (2,2,2): 2*1*1 + 1*2*2 - overlap 1*1*1 = 5.
        assert (
            hypervolume(points, reference=(2.0, 2.0, 2.0), keys=self.KEYS3) == 5.0
        )

    def test_three_key_dominated_point_adds_nothing(self):
        clean = [
            _nd_point(0, self.KEYS3, (0.0, 1.0, 1.0)),
            _nd_point(1, self.KEYS3, (1.0, 0.0, 0.0)),
        ]
        noisy = clean + [_nd_point(2, self.KEYS3, (1.5, 1.5, 1.5))]
        reference = (2.0, 2.0, 2.0)
        assert hypervolume(noisy, reference=reference, keys=self.KEYS3) == (
            hypervolume(clean, reference=reference, keys=self.KEYS3)
        )

    def test_three_key_degenerate_axis_matches_two_key(self):
        # A constant third key slices to (reference - constant) times the
        # two-key area — the recursion's base case contract.
        pairs = [(1.0, 3.0), (2.0, 1.0)]
        flat = [
            _nd_point(i, self.KEYS3, (e, t, 1.0)) for i, (e, t) in enumerate(pairs)
        ]
        planar = [_point(i, e, t) for i, (e, t) in enumerate(pairs)]
        reference2 = {"energy": 4.0, "time": 4.0}
        area = hypervolume(planar, reference=reference2)
        volume = hypervolume(flat, reference=(4.0, 4.0, 3.0), keys=self.KEYS3)
        assert volume == pytest.approx(area * (3.0 - 1.0))

    def test_four_key_hypercube(self):
        names = ("a", "b", "c", "d")
        point = _nd_point(0, names, (0.0, 0.0, 0.0, 0.0))
        assert (
            hypervolume([point], reference=(2.0, 2.0, 2.0, 2.0), keys=names)
            == 16.0
        )

    def test_mismatched_reference_length_rejected(self):
        with pytest.raises(ConfigurationError):
            hypervolume(
                [_nd_point(0, self.KEYS3, (0.0, 0.0, 0.0))],
                reference=(1.0, 1.0),
                keys=self.KEYS3,
            )

    def test_dict_reference_missing_key_rejected(self):
        with pytest.raises(ConfigurationError):
            hypervolume(
                [_nd_point(0, self.KEYS3, (0.0, 0.0, 0.0))],
                reference={"energy": 1.0, "time": 1.0},
                keys=self.KEYS3,
            )
