"""Search engines (repro.search)."""

import pytest

from repro.core.mapping import Mapping
from repro.core.objective import cdcm_objective, cwm_objective
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search.annealing import FAST_SCHEDULE, AnnealingSchedule, SimulatedAnnealing
from repro.search.base import SearchResult
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.search.greedy import GreedyConstructive
from repro.search.random_search import RandomSearch
from repro.search.registry import available_searchers, get_searcher
from repro.utils.errors import ConfigurationError


@pytest.fixture
def example_objective(example_cdcg, example_platform):
    return cdcm_objective(example_cdcg, example_platform)


@pytest.fixture
def example_initial(example_cdcg):
    return Mapping.random(example_cdcg.cores(), 4, rng=11)


class TestSearchResult:
    def test_improvement_over(self):
        result = SearchResult(Mapping({"a": 0}), best_cost=75.0, evaluations=1)
        assert result.improvement_over(100.0) == pytest.approx(0.25)
        assert result.improvement_over(0.0) == 0.0


class TestExhaustiveSearch:
    def test_finds_global_optimum(self, example_objective, example_initial):
        result = ExhaustiveSearch().search(example_objective, example_initial)
        # Optimal CDCM cost of the example is at most the cost of the paper's
        # good mapping (399 pJ).
        assert result.best_cost <= 399.0 + 1e-9
        assert result.evaluations == 24  # 4! mappings, initial counted once

    def test_space_size(self):
        assert ExhaustiveSearch.search_space_size(4, 4) == 24
        assert ExhaustiveSearch.search_space_size(3, 6) == 120
        assert ExhaustiveSearch.search_space_size(5, 4) == 0

    def test_refuses_large_spaces(self, example_objective, example_initial):
        searcher = ExhaustiveSearch(max_candidates=10)
        with pytest.raises(ConfigurationError):
            searcher.search(example_objective, example_initial)

    def test_requires_num_tiles(self, example_objective):
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch().search(example_objective, Mapping({"A": 0, "B": 1, "E": 2, "F": 3}))

    def test_history_is_monotone(self, example_objective, example_initial):
        result = ExhaustiveSearch().search(example_objective, example_initial)
        costs = [cost for _, cost in result.history]
        assert costs == sorted(costs, reverse=True)


class TestSimulatedAnnealing:
    def test_improves_on_initial(self, example_objective, example_initial):
        initial_cost = example_objective(example_initial)
        result = SimulatedAnnealing(FAST_SCHEDULE).search(
            example_objective, example_initial, rng=3
        )
        assert result.best_cost <= initial_cost
        assert result.evaluations > 1
        assert result.accepted_moves > 0

    def test_reaches_optimum_on_small_example(self, example_objective, example_initial):
        result = SimulatedAnnealing(
            AnnealingSchedule(cooling_factor=0.9, max_evaluations=2000)
        ).search(example_objective, example_initial, rng=5)
        exhaustive = ExhaustiveSearch().search(example_objective, example_initial)
        assert result.best_cost == pytest.approx(exhaustive.best_cost, rel=0.02)

    def test_deterministic_with_seed(self, example_objective, example_initial):
        a = SimulatedAnnealing(FAST_SCHEDULE).search(
            example_objective, example_initial, rng=9
        )
        b = SimulatedAnnealing(FAST_SCHEDULE).search(
            example_objective, example_initial, rng=9
        )
        assert a.best_cost == b.best_cost
        assert a.best_mapping == b.best_mapping

    def test_respects_max_evaluations(self, example_objective, example_initial):
        schedule = AnnealingSchedule(max_evaluations=100)
        result = SimulatedAnnealing(schedule).search(
            example_objective, example_initial, rng=1
        )
        assert result.evaluations <= 100 + 1

    def test_explicit_initial_temperature(self, example_objective, example_initial):
        schedule = AnnealingSchedule(initial_temperature=50.0, max_evaluations=300)
        result = SimulatedAnnealing(schedule).search(
            example_objective, example_initial, rng=1
        )
        assert result.best_cost <= example_objective(example_initial)

    def test_invalid_schedules(self):
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(cooling_factor=1.5)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(initial_temperature=-1.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(max_evaluations=0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(min_temperature_ratio=2.0)

    def test_single_tile_noc(self):
        objective = lambda mapping: 1.0  # noqa: E731
        result = SimulatedAnnealing().search(
            objective, Mapping({"a": 0}, num_tiles=1), rng=0
        )
        assert result.best_cost == 1.0


class TestRandomSearch:
    def test_never_worse_than_initial(self, example_objective, example_initial):
        initial_cost = example_objective(example_initial)
        result = RandomSearch(samples=30).search(example_objective, example_initial, rng=7)
        assert result.best_cost <= initial_cost
        assert result.evaluations == 31

    def test_invalid_samples(self):
        with pytest.raises(ConfigurationError):
            RandomSearch(samples=0)


class TestGreedyConstructive:
    def test_beats_worst_random_mapping(self, example_cdcg, example_platform):
        cwg = cdcg_to_cwg(example_cdcg)
        greedy = GreedyConstructive(cwg, example_platform)
        mapping = greedy.construct()
        objective = cwm_objective(cwg, example_platform)
        greedy_cost = objective(mapping)
        worst = max(
            objective(Mapping.random(example_cdcg.cores(), 4, rng=s)) for s in range(10)
        )
        assert greedy_cost <= worst

    def test_places_all_cores_distinctly(self, example_cdcg, example_platform):
        cwg = cdcg_to_cwg(example_cdcg)
        mapping = GreedyConstructive(cwg, example_platform).construct()
        tiles = list(mapping.assignments().values())
        assert len(set(tiles)) == len(tiles) == 4

    def test_search_interface(self, example_cdcg, example_platform, example_objective):
        cwg = cdcg_to_cwg(example_cdcg)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=2)
        result = GreedyConstructive(cwg, example_platform).search(
            example_objective, initial
        )
        assert result.best_cost <= example_objective(initial)

    def test_too_many_cores(self, example_cdcg):
        cwg = cdcg_to_cwg(example_cdcg)
        platform = Platform(mesh=Mesh(1, 2))
        with pytest.raises(ConfigurationError):
            GreedyConstructive(cwg, platform).construct()


class TestGeneticSearch:
    def test_improves_on_initial(self, example_objective, example_initial):
        params = GeneticParameters(population_size=10, generations=8)
        result = GeneticSearch(params).search(example_objective, example_initial, rng=3)
        assert result.best_cost <= example_objective(example_initial)
        assert result.evaluations > 10

    def test_children_are_valid_mappings(self, example_objective, example_initial):
        params = GeneticParameters(population_size=8, generations=5, mutation_rate=1.0)
        result = GeneticSearch(params).search(example_objective, example_initial, rng=1)
        tiles = list(result.best_mapping.assignments().values())
        assert len(set(tiles)) == len(tiles)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GeneticParameters(population_size=1)
        with pytest.raises(ConfigurationError):
            GeneticParameters(tournament_size=99)
        with pytest.raises(ConfigurationError):
            GeneticParameters(crossover_rate=2.0)
        with pytest.raises(ConfigurationError):
            GeneticParameters(elite_count=40)


class TestRegistry:
    def test_aliases(self):
        assert isinstance(get_searcher("sa"), SimulatedAnnealing)
        assert isinstance(get_searcher("ES"), ExhaustiveSearch)
        assert isinstance(get_searcher("random"), RandomSearch)
        assert isinstance(get_searcher("genetic"), GeneticSearch)

    def test_kwargs_forwarded(self):
        searcher = get_searcher("random", samples=5)
        assert searcher.samples == 5

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_searcher("tabu")

    def test_available_list(self):
        names = available_searchers()
        assert "annealing" in names and "exhaustive" in names
