"""Deterministic RNG helpers (repro.utils.rng)."""

import numpy as np
import pytest

from repro.utils.rng import coin_flip, derive_rng, ensure_rng, spawn_seeds


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_existing_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds_a = spawn_seeds(3, 10)
        seeds_b = spawn_seeds(3, 10)
        assert len(seeds_a) == 10
        assert seeds_a == seeds_b

    def test_zero_count(self):
        assert spawn_seeds(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(3, -1)

    def test_seeds_are_distinct_in_practice(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50


class TestDeriveRng:
    def test_same_stream_same_sequence(self):
        a = derive_rng(5, 2).integers(0, 1000, size=4)
        b = derive_rng(5, 2).integers(0, 1000, size=4)
        assert list(a) == list(b)

    def test_different_streams_differ(self):
        a = derive_rng(5, 0).integers(0, 10**9)
        b = derive_rng(5, 1).integers(0, 10**9)
        assert a != b

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(5, -1)


class TestCoinFlip:
    def test_probability_zero_and_one(self):
        rng = ensure_rng(0)
        assert coin_flip(rng, 0.0) is False
        assert coin_flip(rng, 1.0) is True

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            coin_flip(ensure_rng(0), 1.5)

    def test_rough_frequency(self):
        rng = ensure_rng(123)
        hits = sum(coin_flip(rng, 0.25) for _ in range(2000))
        assert 350 < hits < 650
