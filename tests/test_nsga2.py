"""Tests for the NSGA-II population-front search engine.

Covers the acceptance properties of the population-front redesign:

* the returned front is mutually non-dominated (and sorted/deduplicated like
  every :func:`repro.analysis.pareto.non_dominated` front);
* seeded runs are deterministic, and bit-identical between
  :class:`~repro.eval.parallel.SerialBackend` and
  :class:`~repro.eval.parallel.ProcessPoolBackend`;
* on the paper's worked example the NSGA-II front matches the exhaustive
  front exactly, and on the image-encoder workload it is at least as good as
  a budget-matched :func:`~repro.analysis.pareto.weight_sweep_front`
  (hypervolume under a shared reference, plus a per-point dominance check);
* the engine-building machinery (registry, objective specs, scalar
  reporting) behaves like every other engine.

Worker count for the pool tests comes from ``REPRO_TEST_N_WORKERS``
(default 2), mirroring ``tests/test_parallel.py``.
"""

from __future__ import annotations

import os
from itertools import permutations

import pytest

from repro.analysis.pareto import (
    hypervolume,
    non_dominated,
    pareto_front,
    weight_sweep_front,
)
from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.eval.parallel import ProcessPoolBackend, SerialBackend
from repro.noc.platform import Platform
from repro.noc.topology import Mesh
from repro.search import available_searchers, get_searcher
from repro.search.nsga2 import (
    NSGA2Search,
    Nsga2Parameters,
    crowding_distances,
    fast_non_dominated_sort,
)
from repro.utils.errors import ConfigurationError
from repro.workloads.embedded import image_encoder

N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

SEED = 20050307
KEYS = ("dynamic_energy", "time")
PARAMS = Nsga2Parameters(population_size=16, generations=8)


@pytest.fixture(scope="module")
def encoder_workload():
    """The image-encoder CDCG on a 4x3 mesh — the paper-style front workload."""
    cdcg = image_encoder()
    platform = Platform(mesh=Mesh(4, 3))
    return cdcg, platform


def _encoder_search(encoder_workload, backend=None, rng=SEED, params=PARAMS):
    cdcg, platform = encoder_workload
    context = CdcmEvaluationContext(cdcg, platform)
    initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
    engine = NSGA2Search(params, keys=KEYS, backend=backend)
    return engine.search(context, initial, rng=rng)


class TestParameters:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(population_size=3)
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(generations=0)
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(tournament_size=0)
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(tournament_size=40, population_size=8)
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(crossover_rate=1.5)
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(mutation_rate=-0.1)
        with pytest.raises(ConfigurationError):
            Nsga2Parameters(n_workers=0)

    def test_unknown_front_keys_rejected(self, example_cdcg, example_platform):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=0)
        engine = NSGA2Search(PARAMS, keys=("energy", "latency"))
        with pytest.raises(ConfigurationError):
            engine.search(context, initial, rng=0)

    def test_plain_scalar_callable_rejected(self, example_cdcg):
        initial = Mapping.random(example_cdcg.cores(), 4, rng=0)
        with pytest.raises(ConfigurationError):
            NSGA2Search(PARAMS).search(lambda mapping: 0.0, initial, rng=0)


class TestSortingPrimitives:
    def _vectors(self, pairs):
        return [MetricVector(("energy", "time"), pair) for pair in pairs]

    def test_fast_non_dominated_sort_ranks(self):
        vectors = self._vectors([(1, 4), (2, 3), (4, 1), (2, 4), (5, 5)])
        fronts = fast_non_dominated_sort(vectors, ("energy", "time"))
        assert fronts[0] == [0, 1, 2]
        assert fronts[1] == [3]
        assert fronts[2] == [4]
        assert sorted(i for front in fronts for i in front) == list(range(5))

    def test_crowding_boundaries_are_infinite(self):
        vectors = self._vectors([(1, 5), (2, 3), (3, 2), (5, 1)])
        distances = crowding_distances([0, 1, 2, 3], vectors, ("energy", "time"))
        assert distances[0] == float("inf")
        assert distances[3] == float("inf")
        assert 0.0 < distances[1] < float("inf")
        assert 0.0 < distances[2] < float("inf")

    def test_crowding_small_fronts_all_infinite(self):
        vectors = self._vectors([(1, 2), (2, 1)])
        distances = crowding_distances([0, 1], vectors, ("energy", "time"))
        assert all(value == float("inf") for value in distances.values())

    def test_crowding_degenerate_key_contributes_nothing(self):
        vectors = self._vectors([(1, 7), (2, 7), (3, 7)])
        distances = crowding_distances([0, 1, 2], vectors, ("energy", "time"))
        # energy spreads the interior point, the flat time axis adds nothing.
        assert distances[1] == pytest.approx(1.0)


class TestFrontInvariants:
    def test_front_is_mutually_non_dominated(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        assert result.front, "NSGA-II returned an empty front"
        for a in result.front:
            for b in result.front:
                if a is not b:
                    assert not a.metrics.dominates(b.metrics, KEYS)

    def test_front_sorted_and_deduplicated(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        positions = [tuple(p.metrics[k] for k in KEYS) for p in result.front]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)
        assert result.front == non_dominated(result.front, KEYS)

    def test_front_points_reprice_identically(self, encoder_workload):
        cdcg, platform = encoder_workload
        result = _encoder_search(encoder_workload)
        context = CdcmEvaluationContext(cdcg, platform)
        for point in result.front:
            assert context.metrics(point.mapping) == point.metrics

    def test_scalar_reporting_matches_weight_view(self, encoder_workload):
        # best_cost is the incumbent under the context's own weight view
        # ({"energy": 1.0} for a default CDCM context).
        result = _encoder_search(encoder_workload)
        assert result.best_metrics is not None
        assert result.best_cost == result.best_metrics["energy"]
        evals, final_cost = result.history[-1]
        assert final_cost == result.best_cost
        assert evals <= result.evaluations

    def test_evaluation_budget_is_mu_plus_lambda(self, encoder_workload):
        result = _encoder_search(encoder_workload)
        expected = PARAMS.population_size * (PARAMS.generations + 1)
        assert result.evaluations == expected

    def test_single_component_objective_degenerates_gracefully(
        self, example_cwg, example_platform
    ):
        # CWM prices one component; NSGA-II degenerates into an elitist GA.
        context = CwmEvaluationContext(example_cwg, example_platform)
        initial = Mapping.random(sorted(example_cwg.cores), 4, rng=0)
        result = NSGA2Search(Nsga2Parameters(population_size=8, generations=4)).search(
            context, initial, rng=1
        )
        assert len(result.front) == 1
        assert result.front[0].metrics["dynamic_energy"] == result.best_cost


class TestDeterminism:
    def test_seeded_runs_identical(self, encoder_workload):
        first = _encoder_search(encoder_workload, rng=SEED)
        second = _encoder_search(encoder_workload, rng=SEED)
        assert first.best_cost == second.best_cost
        assert first.best_mapping == second.best_mapping
        assert first.history == second.history
        assert [p.metrics for p in first.front] == [p.metrics for p in second.front]
        assert [p.mapping for p in first.front] == [p.mapping for p in second.front]

    def test_serial_and_pooled_runs_bit_identical(self, encoder_workload):
        serial = _encoder_search(encoder_workload, backend=SerialBackend())
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            pooled = _encoder_search(encoder_workload, backend=pool)
        assert serial.best_cost == pooled.best_cost
        assert serial.best_mapping == pooled.best_mapping
        assert serial.history == pooled.history
        assert serial.evaluations == pooled.evaluations
        assert [p.metrics for p in serial.front] == [p.metrics for p in pooled.front]
        assert [p.mapping for p in serial.front] == [p.mapping for p in pooled.front]

    def test_n_workers_knob_owns_and_releases_pool(self, encoder_workload):
        serial = _encoder_search(encoder_workload)
        with NSGA2Search(PARAMS, keys=KEYS, n_workers=2) as engine:
            cdcg, platform = encoder_workload
            context = CdcmEvaluationContext(cdcg, platform)
            initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=7)
            pooled = engine.search(context, initial, rng=SEED)
            assert engine._owned_backend is not None
        assert engine._owned_backend is None
        assert pooled.best_cost == serial.best_cost
        assert [p.metrics for p in pooled.front] == [
            p.metrics for p in serial.front
        ]


class TestFrontQuality:
    def test_matches_exhaustive_front_on_paper_example(
        self, example_cdcg, example_platform
    ):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        cores = example_cdcg.cores()
        candidates = [
            Mapping(dict(zip(cores, perm)), num_tiles=4)
            for perm in permutations(range(4))
        ]
        exhaustive = pareto_front(context, candidates, keys=("energy", "time"))

        initial = Mapping.random(cores, 4, rng=0)
        result = NSGA2Search(
            Nsga2Parameters(population_size=12, generations=8),
            keys=("energy", "time"),
        ).search(context, initial, rng=SEED)
        assert [p.metrics for p in result.front] == [
            p.metrics for p in exhaustive
        ]

    def test_front_at_least_matches_weight_sweep(self, encoder_workload):
        cdcg, platform = encoder_workload
        context = CdcmEvaluationContext(cdcg, platform)
        result = _encoder_search(encoder_workload)

        # Budget-matched baseline: the weight sweep prices exactly as many
        # candidates as NSGA-II evaluated.
        pool = [
            Mapping.random(cdcg.cores(), platform.num_tiles, rng=SEED + index)
            for index in range(result.evaluations)
        ]
        sweep = weight_sweep_front(context, pool, weights=9, keys=KEYS)

        # Shared reference: the componentwise maximum over both fronts.
        union = list(result.front) + list(sweep.front)
        reference = {
            key: max(point.metrics[key] for point in union) for key in KEYS
        }
        nsga2_hv = hypervolume(result.front, reference=reference, keys=KEYS)
        sweep_hv = hypervolume(sweep.front, reference=reference, keys=KEYS)
        assert nsga2_hv >= sweep_hv

        # Dominance check: no sweep point strictly dominates the entire
        # NSGA-II front.
        for point in sweep.front:
            assert not all(
                point.metrics.dominates(mine.metrics, KEYS)
                for mine in result.front
            )


class TestHypervolume:
    def _points(self, pairs):
        from repro.analysis.pareto import ParetoPoint

        return [
            ParetoPoint(
                mapping=Mapping({"a": index}, num_tiles=len(pairs)),
                metrics=MetricVector(("energy", "time"), pair),
            )
            for index, pair in enumerate(pairs)
        ]

    def test_rectangle_areas(self):
        points = self._points([(1, 3), (2, 2), (3, 1)])
        value = hypervolume(points, reference={"energy": 4, "time": 4}, keys=("energy", "time"))
        # (4-1)*(4-3) + (4-2)*(3-2) + (4-3)*(2-1) = 3 + 2 + 1
        assert value == pytest.approx(6.0)

    def test_dominated_points_are_filtered(self):
        points = self._points([(1, 3), (2, 2), (3, 1), (3, 3)])
        value = hypervolume(points, reference={"energy": 4, "time": 4}, keys=("energy", "time"))
        assert value == pytest.approx(6.0)

    def test_default_reference_is_componentwise_max(self):
        points = self._points([(1, 3), (2, 2), (3, 1)])
        # Reference (3, 3): the boundary points sit on the reference box and
        # contribute zero area; only the interior point's rectangle counts.
        assert hypervolume(points, keys=("energy", "time")) == pytest.approx(1.0)

    def test_points_outside_reference_contribute_nothing(self):
        points = self._points([(1, 5), (5, 1), (2, 2)])
        value = hypervolume(points, reference={"energy": 4, "time": 4}, keys=("energy", "time"))
        assert value == pytest.approx(4.0)

    def test_empty_and_arity_guards(self):
        assert hypervolume([], keys=("energy", "time")) == 0.0
        with pytest.raises(ConfigurationError):
            hypervolume(self._points([(1, 2)]), keys=("energy",))

    def test_reference_accepts_pair(self):
        points = self._points([(1, 1)])
        value = hypervolume(points, reference=(2, 3), keys=("energy", "time"))
        assert value == pytest.approx(2.0)


class TestRegistryIntegration:
    def test_registered_names(self):
        names = available_searchers()
        assert "nsga2" in names
        assert "nsga-ii" in names
        assert isinstance(get_searcher("nsga2"), NSGA2Search)
        assert isinstance(get_searcher("nsga-ii"), NSGA2Search)

    def test_kwargs_forwarded(self):
        engine = get_searcher("nsga2", keys=KEYS, n_workers=3)
        assert engine.keys == KEYS
        assert engine.parameters.n_workers == 3

    def test_accepts_weighted_spec(self, example_cdcg, example_platform):
        context = CdcmEvaluationContext(example_cdcg, example_platform)
        initial = Mapping.random(example_cdcg.cores(), 4, rng=0)
        result = get_searcher("nsga2").search(
            (context, {"energy": 0.5, "time": 0.5}), initial, rng=3
        )
        assert result.front
        # The weighted view scores the incumbent with its own weights.
        expected = 0.5 * result.best_metrics["energy"] + 0.5 * result.best_metrics["time"]
        assert result.best_cost == pytest.approx(expected)
