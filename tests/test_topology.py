"""Mesh and torus topologies (repro.noc.topology)."""

import pytest

from repro.noc.topology import Mesh, Torus, build_mesh_crg
from repro.utils.errors import ConfigurationError


class TestMeshGeometry:
    def test_num_tiles(self):
        assert Mesh(3, 4).num_tiles == 12

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            Mesh(0, 3)
        with pytest.raises(ConfigurationError):
            Mesh(3, -1)

    def test_index_position_round_trip(self):
        mesh = Mesh(4, 3)
        for index in mesh.tiles():
            x, y = mesh.position_of(index)
            assert mesh.index_of(x, y) == index

    def test_row_major_numbering(self):
        mesh = Mesh(3, 2)
        assert mesh.index_of(0, 0) == 0
        assert mesh.index_of(2, 0) == 2
        assert mesh.index_of(0, 1) == 3

    def test_out_of_range_position(self):
        with pytest.raises(ConfigurationError):
            Mesh(2, 2).index_of(2, 0)

    def test_out_of_range_index(self):
        with pytest.raises(ConfigurationError):
            Mesh(2, 2).position_of(4)

    def test_contains(self):
        mesh = Mesh(2, 2)
        assert mesh.contains(0) and mesh.contains(3)
        assert not mesh.contains(4) and not mesh.contains(-1)

    def test_str(self):
        assert str(Mesh(3, 2)) == "3x2 mesh"


class TestMeshNeighbours:
    def test_corner_has_two_neighbours(self):
        assert sorted(Mesh(3, 3).neighbours(0)) == [1, 3]

    def test_centre_has_four_neighbours(self):
        assert sorted(Mesh(3, 3).neighbours(4)) == [1, 3, 5, 7]

    def test_edge_has_three_neighbours(self):
        assert len(Mesh(3, 3).neighbours(1)) == 3

    def test_manhattan_distance(self):
        mesh = Mesh(4, 4)
        assert mesh.manhattan_distance(0, 0) == 0
        assert mesh.manhattan_distance(0, 15) == 6
        assert mesh.manhattan_distance(5, 6) == 1


class TestMeshCrg:
    def test_tile_and_link_counts(self):
        crg = Mesh(3, 2).to_crg()
        assert crg.num_tiles == 6
        # links: horizontal 2 per row x 2 rows + vertical 3, times 2 directions
        assert crg.num_links == 2 * (2 * 2 + 3 * 1)

    def test_crg_is_valid(self):
        Mesh(4, 3).to_crg().validate()

    def test_orientations(self):
        crg = Mesh(2, 2).to_crg()
        assert crg.link(0, 1).orientation == "horizontal"
        assert crg.link(0, 2).orientation == "vertical"

    def test_build_mesh_crg_wrapper(self):
        assert build_mesh_crg(2, 3, name="custom").name == "custom"

    def test_single_tile_mesh(self):
        crg = Mesh(1, 1).to_crg()
        assert crg.num_tiles == 1
        assert crg.num_links == 0


class TestTorus:
    def test_all_tiles_have_four_neighbours(self):
        torus = Torus(3, 3)
        for tile in torus.tiles():
            assert len(torus.neighbours(tile)) == 4

    def test_wraparound_distance(self):
        torus = Torus(4, 4)
        # opposite corners are 2 hops on a 4x4 torus (1 wrap per axis)
        assert torus.manhattan_distance(0, 15) == 2

    def test_crg_valid_and_connected(self):
        Torus(3, 3).to_crg().validate()

    def test_str(self):
        assert str(Torus(3, 3)) == "3x3 torus"
