"""Wormhole delay equations and timing diagrams (repro.timing)."""

import pytest

from repro.core.cdcm import CdcmEvaluator
from repro.noc.platform import PAPER_EXAMPLE_PARAMETERS, NocParameters
from repro.timing.delays import (
    packet_delay,
    routing_delay,
    total_packet_delay,
    zero_load_delay,
)
from repro.timing.gantt import (
    build_timelines,
    render_ascii_gantt,
    summarize_timelines,
)
from repro.utils.errors import ConfigurationError


class TestDelayEquations:
    def test_routing_delay_equation6(self):
        # Paper example: K = 2, tr = 2, tl = 1, lambda = 1 ns -> 7 ns.
        assert routing_delay(PAPER_EXAMPLE_PARAMETERS, 2) == pytest.approx(7.0)

    def test_packet_delay_equation7(self):
        # 15 one-bit flits -> 14 ns of body delay.
        assert packet_delay(PAPER_EXAMPLE_PARAMETERS, 15) == pytest.approx(14.0)

    def test_total_delay_equation8(self):
        # K = 2, n = 15 -> 2*(2+1) + 15 = 21 ns.
        assert total_packet_delay(PAPER_EXAMPLE_PARAMETERS, 2, 15) == pytest.approx(21.0)

    def test_total_is_routing_plus_packet(self):
        params = NocParameters(routing_cycles=3, link_cycles=2, clock_period=0.5)
        for hops in (1, 2, 5):
            for flits in (1, 4, 9):
                assert total_packet_delay(params, hops, flits) == pytest.approx(
                    routing_delay(params, hops) + packet_delay(params, flits)
                )

    def test_zero_load_delay_uses_flit_width(self):
        params = NocParameters(flit_width=16)
        assert zero_load_delay(params, 2, 33) == total_packet_delay(params, 2, 3)

    def test_clock_period_scales_delays(self):
        slow = NocParameters(clock_period=2.0)
        fast = NocParameters(clock_period=1.0)
        assert routing_delay(slow, 3) == pytest.approx(2 * routing_delay(fast, 3))

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            routing_delay(PAPER_EXAMPLE_PARAMETERS, 0)
        with pytest.raises(ConfigurationError):
            packet_delay(PAPER_EXAMPLE_PARAMETERS, 0)
        with pytest.raises(ConfigurationError):
            total_packet_delay(PAPER_EXAMPLE_PARAMETERS, 1, 0)


class TestTimelines:
    @pytest.fixture
    def report_c(self, example_cdcg, example_platform, example_mappings):
        return CdcmEvaluator(example_platform).evaluate(
            example_cdcg, example_mappings["c"]
        )

    def test_timeline_reconstructs_delivery_times(self, report_c, example_platform):
        timelines = build_timelines(report_c.schedule, example_platform.parameters)
        by_name = {t.packet: t for t in timelines}
        for name, schedule in report_c.schedule.packet_schedules.items():
            assert by_name[name].end == pytest.approx(schedule.delivery_time)
            assert by_name[name].start == pytest.approx(schedule.ready_time)

    def test_contention_segment_only_on_contended_packet(
        self, report_c, example_platform
    ):
        timelines = build_timelines(report_c.schedule, example_platform.parameters)
        contention = {t.packet: t.duration_of("contention") for t in timelines}
        assert contention["AF1"] == pytest.approx(7.0)
        assert all(value == 0.0 for name, value in contention.items() if name != "AF1")

    def test_segment_kinds_and_order(self, report_c, example_platform):
        timelines = build_timelines(report_c.schedule, example_platform.parameters)
        for timeline in timelines:
            kinds = [segment.kind for segment in timeline.segments]
            assert kinds[0] in ("computation", "routing")
            assert kinds[-1] == "packet"
            # segments are contiguous
            for first, second in zip(timeline.segments, timeline.segments[1:]):
                assert second.start == pytest.approx(first.end)

    def test_ascii_rendering_contains_labels_and_legend(
        self, report_c, example_platform
    ):
        timelines = build_timelines(report_c.schedule, example_platform.parameters)
        chart = render_ascii_gantt(timelines, width=60)
        assert "legend" in chart
        assert "15(A->B):6" in chart
        assert "x" in chart  # the contention segment of AF1

    def test_render_empty(self):
        assert render_ascii_gantt([]) == "(no packets)"

    def test_summary_totals(self, report_c, example_platform):
        timelines = build_timelines(report_c.schedule, example_platform.parameters)
        summary = summarize_timelines(timelines)
        assert summary["makespan"] == pytest.approx(100.0)
        assert summary["contention"] == pytest.approx(7.0)
        assert summary["computation"] == pytest.approx(
            sum(p.computation_time for p in report_c.schedule.packet_schedules.values()
                for p in [p.packet])
        )
