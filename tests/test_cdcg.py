"""Communication dependence and computation graph (repro.graphs.cdcg)."""

import pytest

from repro.graphs.cdcg import CDCG, END, START, Packet, chain_dependences
from repro.utils.errors import GraphValidationError


@pytest.fixture
def diamond() -> CDCG:
    """p0 -> {p1, p2} -> p3."""
    cdcg = CDCG("diamond")
    cdcg.add_packet("p0", "a", "b", 1.0, 10)
    cdcg.add_packet("p1", "b", "c", 2.0, 20)
    cdcg.add_packet("p2", "b", "d", 3.0, 30)
    cdcg.add_packet("p3", "c", "a", 4.0, 40)
    cdcg.add_dependence("p0", "p1")
    cdcg.add_dependence("p0", "p2")
    cdcg.add_dependence("p1", "p3")
    cdcg.add_dependence("p2", "p3")
    return cdcg


class TestPacket:
    def test_valid_packet(self):
        packet = Packet("p", "a", "b", 1.5, 10)
        assert packet.flow == ("a", "b")

    def test_rejects_empty_name(self):
        with pytest.raises(GraphValidationError):
            Packet("", "a", "b", 1.0, 10)

    def test_rejects_reserved_names(self):
        with pytest.raises(GraphValidationError):
            Packet(START, "a", "b", 1.0, 10)
        with pytest.raises(GraphValidationError):
            Packet(END, "a", "b", 1.0, 10)

    def test_rejects_self_communication(self):
        with pytest.raises(GraphValidationError):
            Packet("p", "a", "a", 1.0, 10)

    def test_rejects_negative_computation_time(self):
        with pytest.raises(GraphValidationError):
            Packet("p", "a", "b", -1.0, 10)

    def test_zero_computation_time_allowed(self):
        assert Packet("p", "a", "b", 0.0, 10).computation_time == 0.0

    def test_rejects_non_positive_bits(self):
        with pytest.raises(GraphValidationError):
            Packet("p", "a", "b", 1.0, 0)


class TestConstruction:
    def test_duplicate_packet_name_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            diamond.add_packet("p0", "a", "b", 1.0, 10)

    def test_dependence_on_unknown_packet(self, diamond):
        with pytest.raises(GraphValidationError):
            diamond.add_dependence("p0", "nope")
        with pytest.raises(GraphValidationError):
            diamond.add_dependence("nope", "p0")

    def test_dependence_on_start_end_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            diamond.add_dependence(START, "p0")

    def test_self_dependence_rejected(self, diamond):
        with pytest.raises(GraphValidationError):
            diamond.add_dependence("p0", "p0")

    def test_explicit_core_registration(self):
        cdcg = CDCG()
        cdcg.add_core("idle")
        cdcg.add_packet("p", "a", "b", 1.0, 10)
        assert cdcg.cores() == ["idle", "a", "b"]

    def test_empty_core_name_rejected(self):
        with pytest.raises(GraphValidationError):
            CDCG().add_core("")


class TestInspection:
    def test_counts(self, diamond):
        assert diamond.num_packets == 4
        assert diamond.num_dependences == 4
        assert diamond.num_cores == 4
        assert len(diamond) == 4

    def test_packet_lookup(self, diamond):
        assert diamond.packet("p1").bits == 20
        with pytest.raises(GraphValidationError):
            diamond.packet("missing")

    def test_contains(self, diamond):
        assert "p0" in diamond
        assert "zzz" not in diamond

    def test_total_bits(self, diamond):
        assert diamond.total_bits() == 100

    def test_initial_and_final_packets(self, diamond):
        assert [p.name for p in diamond.initial_packets()] == ["p0"]
        assert [p.name for p in diamond.final_packets()] == ["p3"]

    def test_successors_predecessors(self, diamond):
        assert diamond.successors("p0") == frozenset({"p1", "p2"})
        assert diamond.predecessors("p3") == frozenset({"p1", "p2"})
        with pytest.raises(GraphValidationError):
            diamond.successors("missing")

    def test_packets_between(self, diamond):
        assert [p.name for p in diamond.packets_between("b", "c")] == ["p1"]
        assert diamond.packets_between("c", "b") == []

    def test_flows(self, diamond):
        assert diamond.flows() == [("a", "b"), ("b", "c"), ("b", "d"), ("c", "a")]

    def test_dependences_iteration(self, diamond):
        assert set(diamond.dependences()) == {
            ("p0", "p1"),
            ("p0", "p2"),
            ("p1", "p3"),
            ("p2", "p3"),
        }


class TestOrdering:
    def test_topological_order_respects_dependences(self, diamond):
        order = [p.name for p in diamond.topological_order()]
        assert order.index("p0") < order.index("p1") < order.index("p3")
        assert order.index("p0") < order.index("p2") < order.index("p3")

    def test_topological_order_detects_cycle(self):
        cdcg = CDCG("cyclic")
        cdcg.add_packet("x", "a", "b", 1.0, 1)
        cdcg.add_packet("y", "b", "a", 1.0, 1)
        cdcg.add_dependence("x", "y")
        cdcg.add_dependence("y", "x")
        with pytest.raises(GraphValidationError):
            cdcg.topological_order()

    def test_critical_path_time(self, diamond):
        # longest chain: p0 (1) -> p2 (3) -> p3 (4) = 8
        assert diamond.critical_path_time() == pytest.approx(8.0)

    def test_critical_path_of_independent_packets(self):
        cdcg = CDCG()
        cdcg.add_packet("x", "a", "b", 5.0, 1)
        cdcg.add_packet("y", "c", "d", 7.0, 1)
        assert cdcg.critical_path_time() == pytest.approx(7.0)


class TestValidationAndConversion:
    def test_validate_ok(self, diamond):
        diamond.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(GraphValidationError):
            CDCG("empty").validate()

    def test_validate_rejects_cycle(self):
        cdcg = CDCG("cyclic")
        cdcg.add_packet("x", "a", "b", 1.0, 1)
        cdcg.add_packet("y", "b", "a", 1.0, 1)
        cdcg.add_dependence("x", "y")
        cdcg.add_dependence("y", "x")
        with pytest.raises(GraphValidationError):
            cdcg.validate()

    def test_to_networkx_includes_start_end(self, diamond):
        graph = diamond.to_networkx()
        assert graph.has_edge(START, "p0")
        assert graph.has_edge("p3", END)
        assert graph.nodes["p1"]["bits"] == 20

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_packet("extra", "a", "d", 1.0, 5)
        assert not diamond.has_packet("extra")
        assert clone.num_packets == diamond.num_packets + 1

    def test_repr(self, diamond):
        assert "packets=4" in repr(diamond)


class TestChainDependences:
    def test_chains_in_order(self):
        cdcg = CDCG()
        for i in range(4):
            cdcg.add_packet(f"p{i}", "a", "b", 1.0, 1)
        chain_dependences(cdcg, ["p0", "p1", "p2", "p3"])
        assert cdcg.successors("p0") == frozenset({"p1"})
        assert cdcg.predecessors("p3") == frozenset({"p2"})
