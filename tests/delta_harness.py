"""Reusable delta-conformance property harness.

Both incremental pricers of the suite make the same shape of promise: walk a
swap sequence pricing every move with ``objective.delta`` and the running sum
``cost(initial) + sum(deltas)`` stays within a declared bound of a full
recompute.  The bound differs per model:

* CWM ``delta()`` is *exact* (O(degree) re-pricing of the touched edges) —
  the tracked cost must match a full recompute to float tolerance on every
  step;
* CDCM bounded repair (:mod:`repro.eval.repair`) is exact *at every resync
  point* and whenever a step's repair frontier is empty, and drift-bounded in
  between — the harness follows the engine's own
  :class:`~repro.eval.repair.RepairOutcome` stream to know which bound
  applies when.

:func:`check_delta_conformance` is deliberately objective-agnostic: it takes
plain callables for the ground-truth cost and the delta, so it can pin any
(objective, topology, routing) combination — ``tests/test_eval.py`` runs the
CWM delta through it, ``tests/test_repair.py`` sweeps CDCM repair over
mesh/torus/irregular fabrics and seeded fuzz sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.mapping import Mapping

#: Denominator floor so relative errors stay defined at zero cost.
_REL_FLOOR = 1e-12


@dataclass
class ConformanceReport:
    """What a conformance walk observed — for assertions beyond the bounds.

    Attributes
    ----------
    steps:
        Number of swaps walked.
    exact_steps:
        Steps on which the tracked cost was held to the ``exact_rel`` bound
        (the pricer claimed exactness since the last resync).
    bounded_steps:
        Steps on which only the loose ``bounded_rel`` bound applied.
    worst_exact_rel / worst_bounded_rel:
        Largest relative error observed in each regime.
    relative_errors:
        Per-step relative error of the tracked cost vs the full recompute.
    """

    steps: int = 0
    exact_steps: int = 0
    bounded_steps: int = 0
    worst_exact_rel: float = 0.0
    worst_bounded_rel: float = 0.0
    relative_errors: List[float] = field(default_factory=list)


def random_swaps(
    num_tiles: int, count: int, rng
) -> List[Tuple[int, int]]:
    """A seeded sequence of *count* random tile pairs (repeats allowed).

    Pairs may collide (``a == b``) on purpose: a conforming delta must price
    the degenerate swap as exactly zero, so the harness keeps them in.
    """
    return [
        (rng.randrange(num_tiles), rng.randrange(num_tiles))
        for _ in range(count)
    ]


def check_delta_conformance(
    *,
    cost: Callable[[Mapping], float],
    delta: Callable[[Mapping, int, int], float],
    initial: Mapping,
    swaps: Sequence[Tuple[int, int]],
    exact_rel: float = 1e-9,
    bounded_rel: Optional[float] = None,
    outcome: Optional[Callable[[], object]] = None,
    label: str = "delta",
) -> ConformanceReport:
    """Walk *swaps*, asserting ``cost0 + sum(deltas)`` tracks a full recompute.

    Parameters
    ----------
    cost:
        Ground-truth full recompute of a mapping's cost.  Must be
        side-effect free with respect to *delta* (use a separate evaluator or
        context, not the engine under test).
    delta:
        The incremental pricer under test: ``delta(mapping, tile_a, tile_b)``
        returns the cost change of ``mapping.swap_tiles(tile_a, tile_b)``.
        Every priced swap is accepted (the annealing accept-all worst case
        for state-carrying engines).
    initial:
        Starting mapping of the walk.
    swaps:
        Tile-pair sequence to walk (see :func:`random_swaps`).
    exact_rel:
        Relative bound that applies while the pricer claims exactness —
        always, for pricers without an *outcome* stream.
    bounded_rel:
        Relative bound that applies on drift-tracked steps.  Required when
        *outcome* is supplied; ignored otherwise.
    outcome:
        Optional zero-argument callable returning the pricer's outcome of
        the *most recent* delta, with boolean attributes ``exact`` and
        ``resynced`` (duck-typed against
        :class:`~repro.eval.repair.RepairOutcome`).  A resynced outcome
        restores the exact regime — the resync guarantee the harness pins —
        while an inexact outcome drops the walk to the bounded regime.
    label:
        Name used in assertion messages.

    Returns
    -------
    ConformanceReport
        Per-regime worst errors and step counts for further assertions.
    """
    if outcome is not None and bounded_rel is None:
        raise ValueError(
            "bounded_rel is required when an outcome stream is supplied"
        )
    report = ConformanceReport()
    mapping = initial
    tracked = cost(initial)
    exact_running = True
    for step, (tile_a, tile_b) in enumerate(swaps):
        tracked += delta(mapping, tile_a, tile_b)
        mapping = mapping.swap_tiles(tile_a, tile_b)
        truth = cost(mapping)
        rel = abs(tracked - truth) / max(abs(truth), _REL_FLOOR)
        if outcome is not None:
            step_outcome = outcome()
            if getattr(step_outcome, "resynced", False):
                exact_running = True
            elif not getattr(step_outcome, "exact", True):
                exact_running = False
        report.steps += 1
        report.relative_errors.append(rel)
        if exact_running:
            report.exact_steps += 1
            if rel > report.worst_exact_rel:
                report.worst_exact_rel = rel
            assert rel <= exact_rel, (
                f"{label}: step {step} swap {(tile_a, tile_b)}: tracked cost "
                f"{tracked!r} vs full recompute {truth!r} (rel {rel:.3e}) "
                f"exceeds the exact bound {exact_rel:.3e}"
            )
        else:
            report.bounded_steps += 1
            if rel > report.worst_bounded_rel:
                report.worst_bounded_rel = rel
            assert bounded_rel is not None and rel <= bounded_rel, (
                f"{label}: step {step} swap {(tile_a, tile_b)}: tracked cost "
                f"{tracked!r} vs full recompute {truth!r} (rel {rel:.3e}) "
                f"exceeds the drift bound {bounded_rel:.3e}"
            )
    return report


__all__ = [
    "ConformanceReport",
    "check_delta_conformance",
    "random_swaps",
]
