"""Workload generators: TGFF-like benchmarks, embedded apps, the Table 1 suite."""

import pytest

from repro.graphs.convert import cdcg_to_cwg
from repro.utils.errors import ConfigurationError
from repro.workloads.embedded import (
    embedded_applications,
    fft8,
    hub_gather_scatter,
    image_encoder,
    object_recognition,
    romberg_integration,
)
from repro.workloads.suite import suite_by_noc_size, suite_entry_by_name, table1_suite
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec, generate_benchmark


class TestTgffSpecValidation:
    def test_valid_spec(self):
        TgffSpec("x", num_cores=4, num_packets=10, total_bits=1000)

    def test_invalid_specs(self):
        with pytest.raises(ConfigurationError):
            TgffSpec("x", num_cores=1, num_packets=10, total_bits=1000)
        with pytest.raises(ConfigurationError):
            TgffSpec("x", num_cores=4, num_packets=0, total_bits=1000)
        with pytest.raises(ConfigurationError):
            TgffSpec("x", num_cores=4, num_packets=10, total_bits=5)
        with pytest.raises(ConfigurationError):
            TgffSpec("x", 4, 10, 1000, dependence_density=1.5)
        with pytest.raises(ConfigurationError):
            TgffSpec("x", 4, 10, 1000, computation_scale=-1.0)


class TestTgffGenerator:
    @pytest.fixture
    def spec(self):
        return TgffSpec("bench", num_cores=6, num_packets=40, total_bits=12_345)

    def test_exact_aggregates(self, spec):
        cdcg = TgffLikeGenerator(1).generate(spec)
        assert cdcg.num_cores == 6
        assert cdcg.num_packets == 40
        assert cdcg.total_bits() == 12_345

    def test_deterministic_per_seed(self, spec):
        a = TgffLikeGenerator(7).generate(spec)
        b = TgffLikeGenerator(7).generate(spec)
        c = TgffLikeGenerator(8).generate(spec)
        assert [p.bits for p in a.packets] == [p.bits for p in b.packets]
        assert set(a.dependences()) == set(b.dependences())
        assert [p.bits for p in a.packets] != [p.bits for p in c.packets]

    def test_graph_is_acyclic_and_valid(self, spec):
        cdcg = TgffLikeGenerator(3).generate(spec)
        cdcg.validate()  # raises on cycles

    def test_has_initial_packets(self, spec):
        cdcg = TgffLikeGenerator(3).generate(spec)
        assert len(cdcg.initial_packets()) >= 1

    def test_all_bits_positive(self, spec):
        cdcg = TgffLikeGenerator(5).generate(spec)
        assert all(p.bits >= 1 for p in cdcg.packets)

    def test_zero_computation_scale(self):
        spec = TgffSpec("x", 4, 10, 500, computation_scale=0.0)
        cdcg = generate_benchmark(spec, seed=2)
        assert all(p.computation_time == 0.0 for p in cdcg.packets)

    def test_single_packet_benchmark(self):
        spec = TgffSpec("x", 2, 1, 100)
        cdcg = generate_benchmark(spec, seed=0)
        assert cdcg.num_packets == 1
        assert cdcg.total_bits() == 100

    def test_explicit_levels(self):
        spec = TgffSpec("x", 5, 20, 1000, levels=3)
        cdcg = generate_benchmark(spec, seed=1)
        cdcg.validate()

    def test_dataflow_structure(self):
        # A dependent packet should be sent by the core that received one of
        # its predecessors.
        spec = TgffSpec("x", 6, 30, 3000)
        cdcg = generate_benchmark(spec, seed=4)
        for pred, succ in cdcg.dependences():
            predecessors = cdcg.predecessors(succ)
            sources = {cdcg.packet(p).target for p in predecessors}
            assert cdcg.packet(succ).source in sources


class TestEmbeddedApplications:
    def test_romberg_structure(self):
        cdcg = romberg_integration(levels=4)
        cdcg.validate()
        assert cdcg.num_cores == 6  # master + 4 workers + combiner
        assert cdcg.num_packets == 4 + 4 + 3

    def test_romberg_needs_two_levels(self):
        with pytest.raises(ConfigurationError):
            romberg_integration(levels=1)

    def test_fft8_structure(self):
        cdcg = fft8()
        cdcg.validate()
        assert cdcg.num_cores == 8
        assert cdcg.num_packets == 24  # 8 exchanges x 3 stages

    def test_fft8_data_scale(self):
        assert fft8(data_scale=4.0).total_bits() == 4 * fft8().total_bits()

    def test_object_recognition_structure(self):
        cdcg = object_recognition(num_features=3)
        cdcg.validate()
        assert cdcg.num_cores == 3 + 3 + 2  # CAM, PRE, SEG, FEAT0..2, CLS, DEC
        assert cdcg.num_packets == 2 * (3 + 2 * 3)

    def test_object_recognition_needs_extractor(self):
        with pytest.raises(ConfigurationError):
            object_recognition(num_features=0)

    def test_image_encoder_structure(self):
        cdcg = image_encoder(num_block_units=4)
        cdcg.validate()
        assert cdcg.num_cores == 4 + 4
        assert cdcg.num_packets == 2 * (2 + 2 * 4)

    def test_image_encoder_needs_unit(self):
        with pytest.raises(ConfigurationError):
            image_encoder(num_block_units=0)

    def test_compute_scale_scales_computation(self):
        base = object_recognition()
        scaled = object_recognition(compute_scale=2.0)
        assert scaled.critical_path_time() == pytest.approx(
            2 * base.critical_path_time()
        )

    def test_hub_gather_scatter_structure(self):
        cdcg = hub_gather_scatter(num_workers=8, waves=2)
        cdcg.validate()
        assert cdcg.num_cores == 9  # HUB + 8 workers
        assert cdcg.num_packets == 2 * 2 * 8  # command + result per worker/wave
        # The hotspot property: every packet has the hub as an endpoint.
        for packet in cdcg.packets:
            assert "HUB" in (packet.source, packet.target)

    def test_hub_gather_scatter_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            hub_gather_scatter(num_workers=1)
        with pytest.raises(ConfigurationError):
            hub_gather_scatter(waves=0)

    def test_hub_gather_scatter_not_in_paper_suite(self):
        # A congestion stressor for repro.codesign, not one of the paper's
        # eight applications.
        assert "hub-gather-scatter" not in embedded_applications()

    def test_eight_embedded_applications(self):
        apps = embedded_applications()
        assert len(apps) == 8
        for name, cdcg in apps.items():
            cdcg.validate()
            assert cdcg.name == name

    def test_collapse_to_cwg_works(self):
        for cdcg in embedded_applications().values():
            cwg = cdcg_to_cwg(cdcg)
            assert cwg.total_bits() == cdcg.total_bits()


class TestSuite:
    def test_eighteen_entries(self):
        assert len(table1_suite()) == 18

    def test_eight_noc_sizes(self):
        assert len(suite_by_noc_size()) == 8

    def test_groups(self):
        small = table1_suite(groups=("small",))
        large = table1_suite(groups=("large",))
        assert len(small) == 15
        assert len(large) == 3

    def test_max_tiles_filter(self):
        subset = table1_suite(max_noc_tiles=9)
        assert all(entry.mesh.num_tiles <= 9 for entry in subset)
        assert len(subset) == 9  # 3x2, 2x4, 3x3 rows

    def test_entry_lookup(self):
        entry = suite_entry_by_name("3x3-b")
        assert entry.num_cores == 9
        assert entry.noc_label == "3 x 3"
        with pytest.raises(ConfigurationError):
            suite_entry_by_name("5x5-z")

    @pytest.mark.parametrize("name", ["3x2-a", "2x4-b", "3x3-c", "2x5-a", "3x4-a"])
    def test_small_entries_match_table1_aggregates(self, name):
        entry = suite_entry_by_name(name)
        cdcg = entry.build()
        assert cdcg.num_cores == entry.num_cores
        assert cdcg.num_packets == entry.num_packets
        assert cdcg.total_bits() == entry.total_bits

    def test_cores_fit_their_noc(self):
        for entry in table1_suite():
            assert entry.num_cores <= entry.mesh.num_tiles

    def test_build_is_deterministic(self):
        entry = suite_entry_by_name("2x4-a")
        a = entry.build()
        b = entry.build()
        assert [p.bits for p in a.packets] == [p.bits for p in b.packets]
