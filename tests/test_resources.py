"""NoC resource identifiers and occupations (repro.noc.resources)."""

import pytest

from repro.noc.resources import (
    LinkResource,
    LocalLinkResource,
    Occupation,
    RouterResource,
)


class TestResourceIdentifiers:
    def test_router_equality_and_hash(self):
        assert RouterResource(2) == RouterResource(2)
        assert RouterResource(2) != RouterResource(3)
        assert len({RouterResource(2), RouterResource(2), RouterResource(3)}) == 2

    def test_link_directionality(self):
        assert LinkResource(0, 1) != LinkResource(1, 0)

    def test_local_vs_router_not_equal(self):
        assert LocalLinkResource(1) != RouterResource(1)

    def test_str_forms(self):
        assert str(RouterResource(4)) == "router(tau4)"
        assert str(LinkResource(0, 2)) == "link(tau0->tau2)"
        assert str(LocalLinkResource(3)) == "local(tau3)"


class TestOccupation:
    def test_interval_and_duration(self):
        occupation = Occupation("p", 15, 10.0, 26.0)
        assert occupation.interval == (10.0, 26.0)
        assert occupation.duration == pytest.approx(16.0)

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            Occupation("p", 15, 26.0, 10.0)

    def test_overlap_detection(self):
        a = Occupation("a", 1, 0.0, 10.0)
        b = Occupation("b", 1, 5.0, 15.0)
        c = Occupation("c", 1, 10.0, 20.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching intervals do not overlap

    def test_str_matches_figure3_notation(self):
        plain = Occupation("A->B", 15, 10, 26)
        contended = Occupation("A->F", 15, 46, 69, contended=True)
        assert str(plain) == "15(A->B):[10,26]"
        assert str(contended) == "*15(A->F):[46,69]"
