"""Platform and wormhole parameters (repro.noc.platform)."""

import pytest

from repro.energy.technology import TECH_0_35UM, TECH_PAPER_EXAMPLE
from repro.noc.platform import (
    PAPER_EXAMPLE_PARAMETERS,
    NocParameters,
    Platform,
    paper_example_platform,
)
from repro.noc.routing import YXRouting
from repro.noc.topology import Mesh
from repro.utils.errors import ConfigurationError


class TestNocParameters:
    def test_defaults(self):
        params = NocParameters()
        assert params.routing_cycles == 2
        assert params.link_cycles == 1
        assert params.flit_width == 32

    def test_derived_times(self):
        params = NocParameters(routing_cycles=3, link_cycles=2, clock_period=0.5)
        assert params.routing_time == pytest.approx(1.5)
        assert params.link_time == pytest.approx(1.0)

    def test_flits(self):
        assert NocParameters(flit_width=16).flits(33) == 3

    def test_paper_parameters_use_one_bit_flits(self):
        assert PAPER_EXAMPLE_PARAMETERS.flit_width == 1
        assert PAPER_EXAMPLE_PARAMETERS.flits(40) == 40

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"routing_cycles": -1},
            {"link_cycles": 0},
            {"clock_period": 0.0},
            {"flit_width": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            NocParameters(**kwargs)


class TestPlatform:
    def test_defaults(self):
        platform = Platform(mesh=Mesh(3, 3))
        assert platform.num_tiles == 9
        assert platform.routing.name == "xy"

    def test_route_and_hops(self):
        platform = Platform(mesh=Mesh(3, 3))
        assert platform.route(0, 8) == [0, 1, 2, 5, 8]
        assert platform.hop_count(0, 8) == 5
        assert platform.route_links(0, 2) == [(0, 1), (1, 2)]

    def test_with_helpers_return_new_platform(self):
        platform = Platform(mesh=Mesh(2, 2))
        retech = platform.with_technology(TECH_0_35UM)
        rerouted = platform.with_routing(YXRouting())
        reparam = platform.with_parameters(NocParameters(flit_width=8))
        assert retech.technology is TECH_0_35UM
        assert rerouted.routing.name == "yx"
        assert reparam.parameters.flit_width == 8
        # original untouched
        assert platform.parameters.flit_width == 32

    def test_noc_static_power(self):
        platform = Platform(mesh=Mesh(2, 2), technology=TECH_PAPER_EXAMPLE)
        assert platform.noc_static_power() == pytest.approx(0.1)

    def test_describe_mentions_mesh_and_tech(self):
        text = Platform(mesh=Mesh(2, 3)).describe()
        assert "2x3 mesh" in text
        assert "technology" in text


class TestPaperExamplePlatform:
    def test_shape_and_parameters(self):
        platform = paper_example_platform()
        assert platform.num_tiles == 4
        assert platform.parameters.flit_width == 1
        assert platform.technology.e_rbit == 1.0

    def test_paper_static_power(self):
        # PstNoC = 0.1 pJ/ns for the 2x2 example NoC.
        assert paper_example_platform().noc_static_power() == pytest.approx(0.1)

    def test_technology_override(self):
        platform = paper_example_platform(TECH_0_35UM)
        assert platform.technology is TECH_0_35UM
