"""Exact reproduction of the paper's worked example (Figures 1 to 5).

These tests pin the library's models to the numbers printed in the paper:

* Figure 2 — CWM dynamic energy of 390 pJ for *both* reference mappings;
* Figure 3 — CDCM totals: 400 pJ / 100 ns for mapping (c), 399 pJ / 90 ns for
  mapping (d), and the per-resource occupation intervals of mapping (c);
* Figure 4 — the A->F packet suffers the contention behind B->F at router
  tau1, all other packets are contention free;
* Figure 5 — mapping (d) is contention free.
"""

import pytest

from repro.core.cdcm import CdcmEvaluator
from repro.core.cwm import CwmEvaluator
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.resources import LinkResource, LocalLinkResource, RouterResource
from repro.noc.scheduler import CdcmScheduler
from repro.workloads.paper_example import (
    TAU1,
    TAU2,
    TAU3,
    TAU4,
    paper_example_cdcg,
    paper_example_cwg,
    paper_example_mappings,
    paper_example_platform,
)


@pytest.fixture(scope="module")
def platform():
    return paper_example_platform()


@pytest.fixture(scope="module")
def cdcg():
    return paper_example_cdcg()


@pytest.fixture(scope="module")
def mappings():
    return paper_example_mappings()


@pytest.fixture(scope="module")
def schedule_c(cdcg, platform, mappings):
    return CdcmScheduler(platform).schedule(cdcg, mappings["c"])


@pytest.fixture(scope="module")
def schedule_d(cdcg, platform, mappings):
    return CdcmScheduler(platform).schedule(cdcg, mappings["d"])


class TestFigure1:
    def test_cwg_matches_figure_1a(self, cdcg):
        cwg = paper_example_cwg()
        assert cwg.weight("A", "B") == 15
        assert cwg.weight("A", "F") == 15
        assert cwg.weight("B", "F") == 40
        assert cwg.weight("E", "A") == 35
        assert cwg.weight("F", "B") == 15

    def test_cdcg_has_six_packets_and_four_cores(self, cdcg):
        assert cdcg.num_packets == 6
        assert cdcg.num_cores == 4

    def test_mappings_place_all_cores(self, mappings):
        for mapping in mappings.values():
            assert sorted(mapping.cores) == ["A", "B", "E", "F"]


class TestFigure2:
    """CWM cannot distinguish the two mappings: both cost 390 pJ."""

    def test_cwm_energy_is_390_for_both_mappings(self, cdcg, platform, mappings):
        evaluator = CwmEvaluator(platform)
        cwg = cdcg_to_cwg(cdcg)
        assert evaluator.cost(cwg, mappings["c"]) == pytest.approx(390.0)
        assert evaluator.cost(cwg, mappings["d"]) == pytest.approx(390.0)

    def test_cwm_resource_costs_sum_to_total(self, cdcg, platform, mappings):
        evaluator = CwmEvaluator(platform)
        cwg = cdcg_to_cwg(cdcg)
        report = evaluator.evaluate(cwg, mappings["c"])
        assert sum(report.resource_energy.values()) == pytest.approx(390.0)

    def test_cwm_router_costs_figure_2a(self, cdcg, platform, mappings):
        # Mapping (c): B on tau1, A on tau2, F on tau3, E on tau4.  Router bit
        # counts of Figure 2(a): tau1 = 70, tau2 = 65, tau3 = 70, tau4 = 50...
        # The figure annotates tau1..tau4 with 85/65/70/35 in reading order;
        # what is checked here is the invariant total: the sum of router bits
        # equals the total bits weighted by hop count (255 for this mapping).
        evaluator = CwmEvaluator(platform)
        cwg = cdcg_to_cwg(cdcg)
        report = evaluator.evaluate(cwg, mappings["c"])
        router_bits = sum(
            bits
            for resource, bits in report.resource_bits.items()
            if isinstance(resource, RouterResource)
        )
        link_bits = sum(
            bits
            for resource, bits in report.resource_bits.items()
            if isinstance(resource, LinkResource)
        )
        assert router_bits == 255
        assert link_bits == 135


class TestFigure3MappingC:
    """Per-resource occupation intervals of Figure 3(a)."""

    def _interval(self, result, resource, packet):
        for occupation in result.resource_occupations(resource):
            if occupation.packet == packet:
                return (occupation.start, occupation.end)
        raise AssertionError(f"{packet} not found on {resource}")

    def test_router_tau2_intervals(self, schedule_c):
        router = RouterResource(TAU2)
        assert self._interval(schedule_c, router, "AB1") == (7.0, 23.0)
        assert self._interval(schedule_c, router, "EA1") == (14.0, 35.0)
        assert self._interval(schedule_c, router, "EA2") == (60.0, 76.0)
        assert self._interval(schedule_c, router, "AF1") == (43.0, 59.0)

    def test_router_tau1_intervals(self, schedule_c):
        router = RouterResource(TAU1)
        assert self._interval(schedule_c, router, "AB1") == (10.0, 26.0)
        assert self._interval(schedule_c, router, "BF1") == (11.0, 52.0)
        assert self._interval(schedule_c, router, "AF1") == (46.0, 69.0)
        assert self._interval(schedule_c, router, "FB1") == (83.0, 99.0)

    def test_router_tau4_intervals(self, schedule_c):
        router = RouterResource(TAU4)
        assert self._interval(schedule_c, router, "EA1") == (11.0, 32.0)
        assert self._interval(schedule_c, router, "EA2") == (57.0, 73.0)

    def test_link_tau4_to_tau2_intervals(self, schedule_c):
        link = LinkResource(TAU4, TAU2)
        assert self._interval(schedule_c, link, "EA1") == (13.0, 33.0)
        assert self._interval(schedule_c, link, "EA2") == (59.0, 74.0)

    def test_link_tau1_to_tau3_intervals(self, schedule_c):
        link = LinkResource(TAU1, TAU3)
        assert self._interval(schedule_c, link, "BF1") == (13.0, 53.0)
        # A->F is the contended packet: it only gets the link at 55 ns.
        assert self._interval(schedule_c, link, "AF1") == (55.0, 70.0)

    def test_core_local_link_intervals(self, schedule_c):
        core_b = LocalLinkResource(TAU1)
        assert self._interval(schedule_c, core_b, "AB1") == (12.0, 27.0)
        assert self._interval(schedule_c, core_b, "BF1") == (10.0, 50.0)
        assert self._interval(schedule_c, core_b, "FB1") == (85.0, 100.0)
        core_f = LocalLinkResource(TAU3)
        assert self._interval(schedule_c, core_f, "AF1") == (58.0, 73.0)
        assert self._interval(schedule_c, core_f, "BF1") == (16.0, 56.0)

    def test_contended_occupation_is_marked(self, schedule_c):
        router = RouterResource(TAU1)
        entries = {
            o.packet: o.contended for o in schedule_c.resource_occupations(router)
        }
        assert entries["AF1"] is True
        assert entries["BF1"] is False


class TestFigure3Totals:
    def test_execution_times(self, schedule_c, schedule_d):
        assert schedule_c.execution_time == pytest.approx(100.0)
        assert schedule_d.execution_time == pytest.approx(90.0)

    def test_total_energy(self, cdcg, platform, mappings):
        evaluator = CdcmEvaluator(platform)
        report_c = evaluator.evaluate(cdcg, mappings["c"])
        report_d = evaluator.evaluate(cdcg, mappings["d"])
        assert report_c.total_energy == pytest.approx(400.0)
        assert report_d.total_energy == pytest.approx(399.0)
        assert report_c.dynamic_energy == pytest.approx(390.0)
        assert report_d.dynamic_energy == pytest.approx(390.0)
        assert report_c.static_energy == pytest.approx(10.0)
        assert report_d.static_energy == pytest.approx(9.0)

    def test_mapping_d_saves_11_percent_time(self, schedule_c, schedule_d):
        reduction = 1.0 - schedule_d.execution_time / schedule_c.execution_time
        assert reduction == pytest.approx(0.10, abs=0.02)  # paper: 11.1 %


class TestFigures4And5:
    def test_only_af_is_contended_in_mapping_c(self, schedule_c):
        assert schedule_c.contended_packets() == ["AF1"]
        assert schedule_c.schedule("AF1").contention_delay == pytest.approx(7.0)

    def test_mapping_d_is_contention_free(self, schedule_d):
        assert schedule_d.total_contention_delay() == 0.0

    def test_packet_delivery_times_mapping_c(self, schedule_c):
        deliveries = {
            name: schedule.delivery_time
            for name, schedule in schedule_c.packet_schedules.items()
        }
        assert deliveries == pytest.approx(
            {
                "AB1": 27.0,
                "BF1": 56.0,
                "EA1": 36.0,
                "EA2": 77.0,
                "AF1": 73.0,
                "FB1": 100.0,
            }
        )

    def test_packet_delivery_times_mapping_d(self, schedule_d):
        deliveries = {
            name: schedule.delivery_time
            for name, schedule in schedule_d.packet_schedules.items()
        }
        assert deliveries == pytest.approx(
            {
                "AB1": 30.0,
                "BF1": 56.0,
                "EA1": 36.0,
                "EA2": 77.0,
                "AF1": 63.0,
                "FB1": 90.0,
            }
        )
