"""Analysis pipeline: comparison, tables, figures, ablation, report."""

import pytest

from repro.analysis.ablation import (
    leakage_ablation,
    local_link_ablation,
    routing_ablation,
)
from repro.analysis.comparison import (
    ComparisonConfig,
    ModelComparison,
    TechnologyResult,
    compare_models,
)
from repro.analysis.figures import (
    figure2_data,
    figure3_data,
    figure4_diagram,
    figure5_diagram,
)
from repro.analysis.report import (
    comparison_to_markdown,
    table1_to_markdown,
    table2_to_markdown,
    table_rows_to_markdown,
)
from repro.analysis.tables import (
    Table2Row,
    generate_table1,
    generate_table2,
    render_table1,
    render_table2,
)
from repro.energy.technology import TECH_0_07UM, TECH_0_35UM
from repro.noc.platform import Platform
from repro.search.annealing import AnnealingSchedule
from repro.utils.errors import ConfigurationError
from repro.workloads.suite import suite_entry_by_name, table1_suite

#: A deliberately cheap SA schedule so analysis tests stay fast.
FAST_CONFIG = ComparisonConfig(
    annealing_schedule=AnnealingSchedule(
        cooling_factor=0.85, max_evaluations=400, stall_plateaus=6
    )
)


@pytest.fixture(scope="module")
def small_entry():
    return suite_entry_by_name("3x2-b")


@pytest.fixture(scope="module")
def small_comparison(small_entry):
    cdcg = small_entry.build()
    platform = Platform(mesh=small_entry.mesh)
    return compare_models(cdcg, platform, FAST_CONFIG, seed=5)


class TestComparisonConfig:
    def test_invalid_method(self):
        with pytest.raises(ConfigurationError):
            ComparisonConfig(method="hillclimb")

    def test_invalid_restarts(self):
        with pytest.raises(ConfigurationError):
            ComparisonConfig(restarts=0)

    def test_build_searcher(self):
        assert ComparisonConfig(method="es").build_searcher().name == "exhaustive"
        assert ComparisonConfig(method="sa").build_searcher().name == "annealing"


class TestTechnologyResult:
    def test_energy_saving(self):
        result = TechnologyResult("t", cwm_mapping_energy=100.0, cdcm_mapping_energy=80.0)
        assert result.energy_saving == pytest.approx(0.2)

    def test_zero_reference(self):
        assert TechnologyResult("t", 0.0, 10.0).energy_saving == 0.0


class TestCompareModels:
    def test_reports_both_technologies(self, small_comparison):
        names = [r.technology for r in small_comparison.technology_results]
        assert names == [TECH_0_35UM.name, TECH_0_07UM.name]

    def test_metrics_are_finite(self, small_comparison):
        assert -1.0 <= small_comparison.execution_time_reduction <= 1.0
        assert small_comparison.cpu_time_ratio > 0.0
        for result in small_comparison.technology_results:
            assert result.cwm_mapping_energy > 0
            assert result.cdcm_mapping_energy > 0

    def test_cdcm_search_beats_or_matches_cwm_on_its_own_objective(
        self, small_entry, small_comparison
    ):
        # The CDCM-found mapping must have total energy (at the platform's
        # technology, 0.07um) no worse than the CWM-found mapping, because the
        # CDCM search optimises exactly that quantity from the same start.
        saving = small_comparison.energy_saving(TECH_0_07UM.name)
        assert saving >= -0.05  # allow small annealing noise

    def test_energy_saving_lookup_error(self, small_comparison):
        with pytest.raises(ConfigurationError):
            small_comparison.energy_saving("90nm")

    def test_summary_text(self, small_comparison):
        text = small_comparison.summary()
        assert "ETR=" in text and "ECS[" in text

    def test_mappings_place_all_cores(self, small_entry, small_comparison):
        cores = set(small_entry.build().cores())
        assert set(small_comparison.cwm_mapping.cores) == cores
        assert set(small_comparison.cdcm_mapping.cores) == cores

    def test_exhaustive_method_on_tiny_example(self, example_cdcg, example_platform):
        config = ComparisonConfig(method="exhaustive")
        comparison = compare_models(example_cdcg, example_platform, config, seed=1)
        # With exhaustive search the CDCM mapping is a true optimum of ENoC,
        # so its execution time cannot exceed the CWM mapping's.
        assert comparison.cdcm_mapping_time <= comparison.cwm_mapping_time + 1e-9
        assert comparison.method == "exhaustive"


class TestTable1:
    def test_all_rows_present(self):
        rows = generate_table1()
        assert len(rows) == 8
        assert rows[0].noc_label == "3 x 2"
        assert rows[-1].noc_label == "12 x 10"

    def test_row_values_match_paper(self):
        rows = {row.noc_label: row for row in generate_table1(table1_suite(max_noc_tiles=9))}
        assert rows["3 x 2"].num_cores == [5, 6, 6]
        assert rows["3 x 2"].num_packets == [43, 17, 43]
        assert rows["3 x 2"].total_bits == [78_817, 174, 49_003]
        assert rows["3 x 3"].total_bits == [1_600, 1_860, 43_120]

    def test_render(self):
        text = render_table1(generate_table1(table1_suite(max_noc_tiles=8)))
        assert "NoC size" in text
        assert "78,817" in text


class TestTable2:
    def test_generates_rows_and_average(self, small_entry):
        entries = [small_entry, suite_entry_by_name("2x4-a")]
        rows, comparisons = generate_table2(
            entries, config=FAST_CONFIG, seed=1, keep_comparisons=True
        )
        labels = [row.noc_label for row in rows]
        assert labels == ["3 x 2", "2 x 4", "average"]
        assert rows[-1].num_applications == 2
        assert len(comparisons) == 2
        assert all(row.algorithm == "SA" for row in rows)

    def test_render(self):
        row = Table2Row("3 x 2", "SA", 0.25, 0.005, 0.15, 1.2, 3)
        text = render_table2([row])
        assert "3 x 2" in text and "25.0%" in text

    def test_as_percentages(self):
        row = Table2Row("x", "SA", 0.4, 0.0065, 0.2, 1.0, 1)
        percentages = row.as_percentages()
        assert percentages["ETR"] == pytest.approx(40.0)
        assert percentages["ECS0.07"] == pytest.approx(20.0)


class TestFigures:
    def test_figure2_energies_equal_for_both_mappings(self):
        data = figure2_data()
        assert data.energies["c"] == pytest.approx(390.0)
        assert data.energies["d"] == pytest.approx(390.0)
        assert "EDyNoC" in data.describe()

    def test_figure3_totals(self):
        data = figure3_data()
        assert data.execution_times == pytest.approx({"c": 100.0, "d": 90.0})
        assert data.energies == pytest.approx({"c": 400.0, "d": 399.0})
        assert any("router" in line for line in data.annotations("c"))
        assert "texec" in data.describe()

    def test_figure4_and_5_diagrams(self):
        fig4 = figure4_diagram(width=60)
        fig5 = figure5_diagram(width=60)
        assert "texec = 100" in fig4
        assert "x" in fig4       # contention segment present
        assert "texec = 90" in fig5
        assert "contention = 0" in fig5


class TestAblation:
    @pytest.fixture(scope="class")
    def setup(self):
        entry = suite_entry_by_name("3x2-b")
        return entry.build(), Platform(mesh=entry.mesh)

    def test_routing_ablation(self, setup):
        cdcg, platform = setup
        results = routing_ablation(cdcg, platform, FAST_CONFIG, seed=2)
        assert [r.value for r in results] == ["xy", "yx"]
        assert all("ETR" in r.describe() for r in results)

    def test_leakage_ablation_zero_factor_kills_ecs(self, setup):
        cdcg, platform = setup
        results = leakage_ablation(cdcg, platform, factors=(0.0,), config=FAST_CONFIG, seed=2)
        # With zero leakage both technologies see dynamic energy only, so the
        # ECS columns equal the dynamic-energy difference; they can only
        # differ through the small difference in the ERbit/ELbit ratio of the
        # two technology presets.
        assert results[0].ecs_035 == pytest.approx(results[0].ecs_007, abs=0.02)

    def test_local_link_ablation(self, setup):
        cdcg, platform = setup
        results = local_link_ablation(cdcg, platform, FAST_CONFIG, seed=2)
        assert [r.value for r in results] == ["False", "True"]


class TestReport:
    def test_generic_table(self):
        text = table_rows_to_markdown(["a", "b"], [["1", "2"], ["3", "4"]])
        assert text.count("|") > 0
        assert "| 3 | 4 |" in text

    def test_table1_markdown(self):
        text = table1_to_markdown(generate_table1(table1_suite(max_noc_tiles=6)))
        assert "| 3 x 2 |" in text

    def test_table2_markdown_with_paper_reference(self):
        rows = [Table2Row("3 x 2", "SA", 0.25, 0.005, 0.15, 1.2, 3)]
        text = table2_to_markdown(rows, {"3 x 2": {"ETR": 36.0, "ECS0.35": 0.5, "ECS0.07": 15.0}})
        assert "36.00%" in text
        assert "25.0%" in text

    def test_comparison_markdown(self, small_comparison):
        text = comparison_to_markdown([small_comparison])
        assert small_comparison.application in text
        assert "CPU ratio" in text
