"""The pluggable topology & routing API (repro.noc.topology / routing / deadlock).

Pins the contracts of the redesign:

* capability flags — the dimension-ordered routings wrap exactly when the
  topology declares ``wraps_x`` / ``wraps_y`` (no ``isinstance`` checks), so
  a ``Mesh`` subclass that wraps routes like a torus;
* ``TableRouting`` reproduces ``XYRouting`` routes **exactly** on every mesh
  up to 5x5 (the tie-break contract of the mesh neighbour order);
* ``validate_deadlock_free`` accepts XY-on-mesh and the turn-model routings
  and rejects a deliberately cyclic turn set (and XY-on-torus);
* an ``IrregularTopology`` travels through context pickling with
  bit-identical pooled pricing, and every registered engine runs end-to-end
  on it;
* route tables key on the topology's ``cache_token``, so behaviourally
  different topologies can never alias one another's tables.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import ClassVar, List

import pytest

from repro.core.mapping import Mapping
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.eval.parallel import ProcessPoolBackend, warm_route_table
from repro.eval.route_table import (
    RouteTable,
    clear_route_table_cache,
    get_route_table,
)
from repro.graphs.convert import cdcg_to_cwg
from repro.noc.deadlock import (
    DeadlockReport,
    channel_dependency_graph,
    validate_deadlock_free,
)
from repro.noc.platform import Platform
from repro.noc.routing import (
    NegativeFirstRouting,
    RoutingAlgorithm,
    TableRouting,
    WestFirstRouting,
    XYRouting,
    YXRouting,
    available_routings,
    get_routing,
    register_routing,
)
from repro.noc.topology import (
    IrregularTopology,
    Mesh,
    Torus,
    available_topologies,
    get_topology,
    register_topology,
    topology_cache_token,
)
from repro.search.greedy import GreedyConstructive
from repro.search.nsga2 import Nsga2Parameters
from repro.search.nsga3 import Nsga3Parameters
from repro.search.registry import available_searchers, get_searcher
from repro.utils.errors import ConfigurationError
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))


@dataclass(frozen=True)
class WrappingMesh(Mesh):
    """A Mesh subclass that declares wrap-around without subclassing Torus.

    The regression target of the capability-flag redesign: the seed code
    checked ``isinstance(mesh, Torus)``, which silently routed subclasses
    like this one as a non-wrapping mesh.
    """

    wraps_x: ClassVar[bool] = True
    wraps_y: ClassVar[bool] = True


class ClockwiseRingRouting(RoutingAlgorithm):
    """Deliberately cyclic turn set: always route clockwise on a 2x2 mesh.

    The ring 0 -> 1 -> 3 -> 2 -> 0 induces a cyclic channel dependency
    graph — the canonical wormhole-deadlock counter-example.
    """

    name = "clockwise-ring"
    _RING = (0, 1, 3, 2)

    def route(self, topology, source: int, target: int) -> List[int]:
        """Walk the fixed clockwise ring from *source* until *target*."""
        path = [source]
        position = self._RING.index(source)
        while path[-1] != target:
            position = (position + 1) % len(self._RING)
            path.append(self._RING[position])
        return path


def _irregular_fabric() -> IrregularTopology:
    """An 8-tile irregular fabric: a 4-ring with a 4-tile spur mesh."""
    return IrregularTopology(
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 2), (4, 6), (6, 7), (7, 5)],
        name="fabric8",
    )


def _workload(num_cores: int = 6, seed: int = 7):
    spec = TgffSpec(
        name="irr", num_cores=num_cores, num_packets=18, total_bits=9_000
    )
    return TgffLikeGenerator(seed).generate(spec)


# ---------------------------------------------------------------------------
# Topology protocol & registry
# ---------------------------------------------------------------------------
class TestTopologyProtocol:
    def test_mesh_declares_no_wrap(self):
        assert Mesh(3, 3).wraps_x is False
        assert Mesh(3, 3).wraps_y is False

    def test_torus_declares_wrap(self):
        assert Torus(3, 3).wraps_x is True
        assert Torus(3, 3).wraps_y is True

    def test_cache_tokens_distinguish_topologies(self):
        tokens = {
            Mesh(3, 3).cache_token,
            Torus(3, 3).cache_token,
            WrappingMesh(3, 3).cache_token,
            Mesh(3, 4).cache_token,
        }
        assert len(tokens) == 4

    def test_cache_token_stable_across_equal_instances(self):
        assert Mesh(4, 2).cache_token == Mesh(4, 2).cache_token

    def test_links_enumerates_directed_adjacency(self):
        links = Mesh(2, 2).links()
        assert (0, 1) in links and (1, 0) in links
        assert len(links) == 8  # 4 undirected adjacencies, both directions

    def test_duck_typed_token_fallback(self):
        class Minimal:
            num_tiles = 4

            def neighbours(self, index):
                return []

        token = topology_cache_token(Minimal())
        assert token[-1] == 4

    def test_get_topology_specs(self):
        mesh = get_topology("mesh:4x3")
        assert isinstance(mesh, Mesh) and (mesh.width, mesh.height) == (4, 3)
        torus = get_topology("torus:2x5")
        assert isinstance(torus, Torus) and torus.num_tiles == 10

    def test_get_topology_errors(self):
        with pytest.raises(ConfigurationError):
            get_topology("hypercube:3")
        with pytest.raises(ConfigurationError):
            get_topology("mesh:banana")

    def test_register_topology(self):
        register_topology(
            "ring-test", lambda arg: IrregularTopology(
                [(i, (i + 1) % int(arg)) for i in range(int(arg))], name="ring"
            ),
            overwrite=True,
        )
        ring = get_topology("ring-test:5")
        assert ring.num_tiles == 5
        assert "ring-test" in available_topologies()
        with pytest.raises(ConfigurationError):
            register_topology("ring-test", lambda arg: ring)


class TestIrregularTopology:
    def test_bidirectional_edges_by_default(self):
        topology = IrregularTopology([(0, 1), (1, 2)])
        assert topology.neighbours(1) == [0, 2]
        assert topology.neighbours(2) == [1]

    def test_rejects_self_loops_and_disconnection(self):
        with pytest.raises(ConfigurationError):
            IrregularTopology([(0, 0)])
        with pytest.raises(ConfigurationError):
            IrregularTopology([(0, 1)], num_tiles=4)

    def test_rejects_directed_graphs_without_return_routes(self):
        # Weakly connected but not strongly: 1 and 2 cannot reach tile 0,
        # so routes back do not exist — rejected at construction, not deep
        # inside routing or pricing.
        with pytest.raises(ConfigurationError):
            IrregularTopology([(0, 1), (0, 2)], bidirectional=False)
        # A directed cycle is strongly connected and accepted.
        ring = IrregularTopology([(0, 1), (1, 2), (2, 0)], bidirectional=False)
        assert ring.neighbours(2) == [0]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            IrregularTopology([])

    def test_crg_round_trip_preserves_identity(self):
        fabric = _irregular_fabric()
        clone = IrregularTopology.from_crg(fabric.to_crg())
        assert clone == fabric
        assert hash(clone) == hash(fabric)
        assert clone.cache_token == fabric.cache_token

    def test_to_crg_is_valid(self):
        _irregular_fabric().to_crg().validate()

    def test_pickle_round_trip(self):
        fabric = _irregular_fabric()
        clone = pickle.loads(pickle.dumps(fabric))
        assert clone == fabric
        assert clone.neighbours(1) == fabric.neighbours(1)

    def test_str_and_repr(self):
        fabric = _irregular_fabric()
        assert "fabric8" in str(fabric)
        assert "IrregularTopology" in repr(fabric)


# ---------------------------------------------------------------------------
# Capability flags (satellite: the isinstance(mesh, Torus) regression)
# ---------------------------------------------------------------------------
class TestWrapCapabilityFlags:
    def test_wrapping_mesh_subclass_wraps_xy(self):
        # The seed code's isinstance(mesh, Torus) check silently routed this
        # subclass as a plain mesh (0 -> 1 -> 2 -> 3); the capability flag
        # takes the one-hop wrap instead.
        assert XYRouting().route(WrappingMesh(4, 4), 0, 3) == [0, 3]

    def test_wrapping_mesh_subclass_wraps_yx(self):
        assert YXRouting().route(WrappingMesh(4, 4), 0, 12) == [0, 12]

    def test_wrapping_mesh_matches_torus_routes(self):
        wrapping, torus = WrappingMesh(4, 3), Torus(4, 3)
        routing = XYRouting()
        for source in torus.tiles():
            for target in torus.tiles():
                assert routing.route(wrapping, source, target) == routing.route(
                    torus, source, target
                )

    def test_wrapping_mesh_has_distinct_route_table(self):
        clear_route_table_cache()
        try:
            plain = get_route_table(Platform(mesh=Mesh(3, 3)))
            wrapped = get_route_table(Platform(mesh=WrappingMesh(3, 3)))
            assert plain is not wrapped
            assert plain.hop_count(0, 2) == 3
            assert wrapped.hop_count(0, 2) == 2  # one wrap hop
        finally:
            clear_route_table_cache()


# ---------------------------------------------------------------------------
# Table-backed routing
# ---------------------------------------------------------------------------
class TestTableRouting:
    def test_reproduces_xy_on_every_mesh_up_to_5x5(self):
        xy, table = XYRouting(), TableRouting()
        for width in range(1, 6):
            for height in range(1, 6):
                mesh = Mesh(width, height)
                for source in mesh.tiles():
                    for target in mesh.tiles():
                        assert table.route(mesh, source, target) == xy.route(
                            mesh, source, target
                        ), (width, height, source, target)

    def test_same_tile_route(self):
        assert TableRouting().route(Mesh(3, 3), 4, 4) == [4]

    def test_routes_are_adjacent_and_minimal_on_torus(self):
        torus = Torus(4, 3)
        table = TableRouting()
        for source in torus.tiles():
            for target in torus.tiles():
                path = table.route(torus, source, target)
                assert path[0] == source and path[-1] == target
                for a, b in zip(path, path[1:]):
                    assert b in torus.neighbours(a)
                assert len(path) == torus.manhattan_distance(source, target) + 1

    def test_deterministic_across_instances(self):
        fabric = _irregular_fabric()
        first, second = TableRouting(), TableRouting()
        for source in fabric.tiles():
            for target in fabric.tiles():
                assert first.route(fabric, source, target) == second.route(
                    fabric, source, target
                )

    def test_irregular_routes_are_valid(self):
        fabric = _irregular_fabric()
        table = TableRouting()
        for source in fabric.tiles():
            for target in fabric.tiles():
                path = table.route(fabric, source, target)
                assert path[0] == source and path[-1] == target
                for a, b in zip(path, path[1:]):
                    assert b in fabric.neighbours(a)

    def test_unreachable_target_raises(self):
        # IrregularTopology rejects one-way fabrics at construction, so the
        # route-time guard needs a duck-typed minimal topology to trigger:
        # 1 can reach 0 but not vice versa.
        class OneWay:
            num_tiles = 2

            def tiles(self):
                return iter(range(2))

            def contains(self, index):
                return 0 <= index < 2

            def neighbours(self, index):
                return [0] if index == 1 else []

        with pytest.raises(ConfigurationError):
            TableRouting().route(OneWay(), 0, 1)

    def test_pickle_drops_memo(self):
        table = TableRouting()
        table.route(Mesh(3, 3), 0, 8)  # populate the memo
        clone = pickle.loads(pickle.dumps(table))
        assert clone._memo == {}
        assert clone.route(Mesh(3, 3), 0, 8) == table.route(Mesh(3, 3), 0, 8)

    def test_endpoint_validation(self):
        with pytest.raises(ConfigurationError):
            TableRouting().route(Mesh(2, 2), 0, 9)


# ---------------------------------------------------------------------------
# Turn-model routings
# ---------------------------------------------------------------------------
class TestTurnModelRoutings:
    @pytest.mark.parametrize("routing_cls", [WestFirstRouting, NegativeFirstRouting])
    def test_minimal_and_adjacent(self, routing_cls):
        mesh = Mesh(4, 4)
        routing = routing_cls()
        for source in mesh.tiles():
            for target in mesh.tiles():
                path = routing.route(mesh, source, target)
                assert path[0] == source and path[-1] == target
                assert len(path) == mesh.manhattan_distance(source, target) + 1
                for a, b in zip(path, path[1:]):
                    assert b in mesh.neighbours(a)

    def test_west_first_goes_west_before_y(self):
        # (2,2) -> (0,0) on a 3x3: west hops first, then north.
        assert WestFirstRouting().route(Mesh(3, 3), 8, 0) == [8, 7, 6, 3, 0]

    def test_west_first_goes_y_before_east(self):
        # (0,0) -> (2,2): no west component, so Y first then east.
        assert WestFirstRouting().route(Mesh(3, 3), 0, 8) == [0, 3, 6, 7, 8]

    def test_negative_first_orders_west_north_east_south(self):
        # (1,2) -> (2,0) on a 3x3: north (negative) before east (positive).
        assert NegativeFirstRouting().route(Mesh(3, 3), 7, 2) == [7, 4, 1, 2]

    @pytest.mark.parametrize("routing_cls", [WestFirstRouting, NegativeFirstRouting])
    def test_rejects_wrapping_topologies(self, routing_cls):
        with pytest.raises(ConfigurationError):
            routing_cls().route(Torus(3, 3), 0, 1)


# ---------------------------------------------------------------------------
# Deadlock validation
# ---------------------------------------------------------------------------
class TestDeadlockValidation:
    def test_xy_on_mesh_is_deadlock_free(self):
        report = validate_deadlock_free(Mesh(4, 4), XYRouting())
        assert report.deadlock_free and bool(report)
        assert report.cycle == ()
        assert "deadlock-free" in report.describe()

    @pytest.mark.parametrize(
        "routing_cls",
        [YXRouting, TableRouting, WestFirstRouting, NegativeFirstRouting],
    )
    def test_shipped_mesh_routings_are_deadlock_free(self, routing_cls):
        assert validate_deadlock_free(Mesh(3, 4), routing_cls())

    def test_cyclic_turn_set_is_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            validate_deadlock_free(Mesh(2, 2), ClockwiseRingRouting())
        assert "not deadlock-free" in str(excinfo.value)

    def test_cyclic_turn_set_report(self):
        report = validate_deadlock_free(
            Mesh(2, 2), ClockwiseRingRouting(), raise_on_cycle=False
        )
        assert isinstance(report, DeadlockReport)
        assert not report.deadlock_free and not bool(report)
        # The witness must be a closed chain of link-to-link dependencies.
        cycle = report.cycle
        assert len(cycle) >= 2
        for held, wanted in zip(cycle, cycle[1:] + cycle[:1]):
            assert held[1] == wanted[0]
        assert "DEADLOCK" in report.describe()

    def test_xy_on_torus_has_wrap_cycles(self):
        report = validate_deadlock_free(
            Torus(4, 4), XYRouting(), raise_on_cycle=False
        )
        assert not report.deadlock_free

    def test_cdg_shape_on_paper_mesh(self):
        graph = channel_dependency_graph(Mesh(2, 2), XYRouting())
        # All 8 directed links of the 2x2 mesh are used by some XY route.
        assert len(graph) == 8

    def test_platform_gate_method(self):
        platform = Platform(mesh=_irregular_fabric(), routing="table")
        assert platform.validate_deadlock_free()
        cyclic = Platform(mesh=Mesh(2, 2), routing=ClockwiseRingRouting())
        with pytest.raises(ConfigurationError):
            cyclic.validate_deadlock_free()


# ---------------------------------------------------------------------------
# Registries & platform specs
# ---------------------------------------------------------------------------
class TestRoutingRegistry:
    def test_shipped_specs(self):
        assert isinstance(get_routing("table"), TableRouting)
        assert isinstance(get_routing("west-first"), WestFirstRouting)
        assert isinstance(get_routing("negative-first"), NegativeFirstRouting)
        assert {"xy", "yx", "table", "west-first", "negative-first"} <= set(
            available_routings()
        )

    def test_register_routing_no_silent_overwrite(self):
        register_routing("ring-2x2-test", ClockwiseRingRouting, overwrite=True)
        assert isinstance(get_routing("ring-2x2-test"), ClockwiseRingRouting)
        with pytest.raises(ConfigurationError):
            register_routing("ring-2x2-test", ClockwiseRingRouting)

    def test_unknown_spec(self):
        with pytest.raises(ConfigurationError):
            get_routing("adaptive-odd-even")


class TestPlatformSpecs:
    def test_topology_and_routing_spec_strings(self):
        platform = Platform(mesh="torus:3x3", routing="table")
        assert isinstance(platform.mesh, Torus)
        assert isinstance(platform.routing, TableRouting)
        assert platform.topology is platform.mesh

    def test_with_topology(self):
        platform = Platform(mesh=Mesh(2, 2))
        moved = platform.with_topology(_irregular_fabric()).with_routing("table")
        assert moved.num_tiles == 8
        assert isinstance(moved.routing, TableRouting)

    def test_route_table_keyed_by_token_not_object(self):
        clear_route_table_cache()
        try:
            first = get_route_table(Platform(mesh=Mesh(3, 3)))
            second = get_route_table(Platform(mesh=Mesh(3, 3)))
            assert first is second
        finally:
            clear_route_table_cache()

    def test_irregular_route_table_shares_by_structure(self):
        clear_route_table_cache()
        try:
            fabric = _irregular_fabric()
            twin = _irregular_fabric()
            first = get_route_table(Platform(mesh=fabric, routing="table"))
            second = get_route_table(Platform(mesh=twin, routing="table"))
            assert first is second
        finally:
            clear_route_table_cache()

    def test_warm_route_table_on_irregular(self):
        clear_route_table_cache()
        try:
            platform = Platform(mesh=_irregular_fabric(), routing=TableRouting())
            table = warm_route_table(platform)
            assert table.is_precomputed
            assert get_route_table(platform) is table
            reference = RouteTable.for_platform(platform, precompute=True)
            for source in range(platform.num_tiles):
                for target in range(platform.num_tiles):
                    assert table.path(source, target) == reference.path(
                        source, target
                    )
        finally:
            clear_route_table_cache()


# ---------------------------------------------------------------------------
# End-to-end on an irregular fabric
# ---------------------------------------------------------------------------
class TestIrregularEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        fabric = _irregular_fabric()
        platform = Platform(mesh=fabric, routing=TableRouting())
        platform.validate_deadlock_free()
        cdcg = _workload()
        return cdcg, cdcg_to_cwg(cdcg), platform

    def test_context_pickle_bit_identical_pooled_pricing(self, setup):
        cdcg, _, platform = setup
        context = CdcmEvaluationContext(cdcg, platform)
        candidates = [
            Mapping.random(cdcg.cores(), platform.num_tiles, rng=index)
            for index in range(24)
        ]
        serial = [context.cost(mapping) for mapping in candidates]
        clone = pickle.loads(pickle.dumps(context))
        with ProcessPoolBackend(n_workers=N_WORKERS, min_batch_size=1) as pool:
            pooled = clone.evaluate_batch(candidates, backend=pool)
        assert pooled == serial

    def test_cwm_pickle_round_trip(self, setup):
        _, cwg, platform = setup
        context = CwmEvaluationContext(cwg, platform)
        mapping = Mapping.random(cwg.cores, platform.num_tiles, rng=5)
        clone = pickle.loads(pickle.dumps(context))
        assert clone.cost(mapping) == context.cost(mapping)

    def test_all_registered_engines_run(self, setup):
        cdcg, _, platform = setup
        initial = Mapping.random(cdcg.cores(), platform.num_tiles, rng=3)
        seen = set()
        for name in available_searchers():
            kwargs = {}
            if name in ("nsga2", "nsga-ii"):
                kwargs = dict(
                    parameters=Nsga2Parameters(population_size=8, generations=2),
                    keys=("energy", "time"),
                )
            elif name in ("nsga3", "nsga-iii"):
                kwargs = dict(
                    parameters=Nsga3Parameters(population_size=8, generations=2),
                    keys=("energy", "time"),
                )
            engine = get_searcher(name, **kwargs)
            if type(engine) in seen:
                continue  # registry aliases resolve to the same class
            seen.add(type(engine))
            result = engine.search(
                CdcmEvaluationContext(cdcg, platform), initial, rng=11
            )
            assert result.best_cost > 0
            assert result.best_mapping.num_tiles == platform.num_tiles
        assert len(seen) == 6

    def test_greedy_constructs_deterministically(self, setup):
        _, cwg, platform = setup
        initial = Mapping.random(cwg.cores, platform.num_tiles, rng=3)
        objective = CwmEvaluationContext(cwg, platform)
        first = GreedyConstructive(cwg, platform).search(objective, initial)
        second = GreedyConstructive(cwg, platform).search(objective, initial)
        assert first.best_mapping == second.best_mapping
        assert first.best_cost == second.best_cost
