"""Reusable scenario-conformance harness (sibling of ``delta_harness``).

Every runner configuration of the scenario engine makes the same four
promises, independent of engine, model, remap mode or pricing backend:

* **determinism** — replaying a script twice yields bit-identical
  :class:`~repro.scenario.runner.ScenarioTrace` digests, and so does
  replaying it under any alternative configuration that only moves *where*
  pricing runs (serial vs pooled backends);
* **deadlock freedom after every fault** — an applied fault event always
  installs a fabric that :func:`~repro.noc.deadlock.validate_deadlock_free`
  certified (the only tolerated exception is a repair returning the fabric
  to a base state that was never certified to begin with, e.g. a torus);
* **remap-scope minimality** — incremental remapping never searches a
  larger region than a full re-search of the same event, rejected events
  search nothing, and every remapped core belongs to a live application;
* **survivor-placement stability** — cores outside an event's remap scope
  keep their tiles, and rejected events change neither placements, nor the
  fabric, nor the cost.

:func:`check_scenario_conformance` walks one script under a caller-supplied
runner factory and asserts all of the above; on any violation the assertion
message embeds the script in its replayable ``to_dict`` JSON form, so a
failing fuzz case can be pasted straight back through
:meth:`~repro.scenario.events.ScenarioScript.from_dict`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.scenario.events import ApplicationArrival, ScenarioScript
from repro.scenario.fabric import FAULT_EVENT_KINDS
from repro.scenario.runner import ScenarioRunner, ScenarioTrace


@dataclass
class ScenarioConformanceReport:
    """What a conformance walk observed — for assertions beyond the invariants.

    Attributes
    ----------
    trace:
        The reference trace of the primary runner configuration.
    full_trace:
        The full-remap trace, when a full-mode factory was supplied.
    compared:
        Number of alternative configurations checked for bit-identity.
    """

    trace: ScenarioTrace
    full_trace: Optional[ScenarioTrace] = None
    compared: int = 0


def replayable(script: ScenarioScript) -> str:
    """The script in replayable JSON form (for failure messages)."""
    return json.dumps(script.to_dict(), sort_keys=True)


def check_scenario_conformance(
    script: ScenarioScript,
    runner_factory: Callable[[], ScenarioRunner],
    compare_factories: Sequence[Callable[[], ScenarioRunner]] = (),
    full_factory: Optional[Callable[[], ScenarioRunner]] = None,
    label: str = "scenario",
) -> ScenarioConformanceReport:
    """Replay *script* and assert the scenario-engine invariants.

    Parameters
    ----------
    script:
        The scenario under test.
    runner_factory:
        Zero-argument callable building a **fresh** primary runner for the
        script (called twice to check replay determinism).
    compare_factories:
        Further factories (e.g. the same configuration on a
        :class:`~repro.eval.parallel.ProcessPoolBackend`) whose traces must
        be bit-identical to the primary one.
    full_factory:
        Optional factory of the ``remap="full"`` twin configuration; when
        given, the harness asserts identical event verdicts and that the
        primary (incremental) configuration never searches a larger region.
    label:
        Name used in assertion messages.

    Returns
    -------
    ScenarioConformanceReport
        The traces, for assertions beyond the invariants.
    """
    tag = f"{label} [{script.name}]"

    trace = runner_factory().run()
    replay = runner_factory().run()
    assert trace.content_hash() == replay.content_hash(), (
        f"{tag}: replaying the same script produced a different trace "
        f"({trace.content_hash()} vs {replay.content_hash()})\n"
        f"replayable script: {replayable(script)}"
    )

    compared = 0
    for factory in compare_factories:
        other = factory().run()
        assert other.content_hash() == trace.content_hash(), (
            f"{tag}: alternative configuration #{compared} produced a "
            f"different trace ({other.content_hash()} vs "
            f"{trace.content_hash()})\nreplayable script: {replayable(script)}"
        )
        compared += 1

    _check_trace_invariants(script, trace, tag)

    full_trace = None
    if full_factory is not None:
        full_trace = full_factory().run()
        _check_scope_minimality(script, trace, full_trace, tag)

    return ScenarioConformanceReport(
        trace=trace, full_trace=full_trace, compared=compared
    )


def _check_trace_invariants(
    script: ScenarioScript, trace: ScenarioTrace, tag: str
) -> None:
    """Certification, stability and bookkeeping invariants of one trace."""
    context = f"\nreplayable script: {replayable(script)}"
    assert len(trace.records) == len(script.events), (
        f"{tag}: {len(script.events)} events but {len(trace.records)} "
        f"records{context}"
    )

    previous = None
    base_certified = trace.base_outcome.deadlock_free
    for record, event in zip(trace.records, script.events):
        where = f"{tag}: event {record.index} ({record.kind})"
        assert record.kind == event.kind and record.event_token == event.token(), (
            f"{where}: trace records a different event than the script"
            f"{context}"
        )

        if record.outcome.applied and record.kind in FAULT_EVENT_KINDS:
            # Deadlock freedom after every fault.  A fabric with active
            # faults must always be certified; the healthy base state is
            # exempt only when it was never certified (torus bases).
            returned_to_base = record.alive_tiles == script.topology.num_tiles
            if not (returned_to_base and not base_certified):
                assert record.outcome.deadlock_free, (
                    f"{where}: applied fault left an uncertified fabric"
                    f"{context}"
                )

        if not record.outcome.applied:
            # Rejected events are inert.
            assert record.remapped == () and record.searched_tiles == 0, (
                f"{where}: rejected event still remapped something{context}"
            )
            if previous is not None:
                assert record.placements == previous.placements, (
                    f"{where}: rejected event moved placements{context}"
                )
                assert record.alive_tiles == previous.alive_tiles, (
                    f"{where}: rejected event changed the fabric{context}"
                )
                assert record.total_cost == previous.total_cost, (
                    f"{where}: rejected event changed the cost{context}"
                )
            else:
                assert record.placements == (), (
                    f"{where}: rejected first event produced placements"
                    f"{context}"
                )
        else:
            _check_survivor_stability(record, previous, event, where, context)

        remapped_apps = {label.split(":", 1)[0] for label in record.remapped}
        live = set(record.apps)
        assert remapped_apps <= live, (
            f"{where}: remapped cores of dead applications "
            f"{sorted(remapped_apps - live)}{context}"
        )
        assert len(record.remapped) == len(set(record.remapped)), (
            f"{where}: duplicate remap labels{context}"
        )

        for _, assignment in record.placements:
            tiles = [tile for _, tile in assignment]
            assert len(tiles) == len(set(tiles)), (
                f"{where}: an application occupies a tile twice{context}"
            )
        all_tiles = [
            tile
            for _, assignment in record.placements
            for _, tile in assignment
        ]
        assert len(all_tiles) == len(set(all_tiles)), (
            f"{where}: two applications share a tile{context}"
        )
        assert len(all_tiles) <= record.alive_tiles, (
            f"{where}: more placed cores than alive tiles{context}"
        )
        previous = record


def _check_survivor_stability(record, previous, event, where: str, context: str):
    """Cores outside the remap scope keep their tiles across an event."""
    moved = set(record.remapped)
    previous_apps = dict(previous.placements) if previous is not None else {}
    current_apps = dict(record.placements)

    for app, assignment in current_apps.items():
        if app not in previous_apps:
            # New applications must arrive through an arrival event that
            # remaps exactly their cores.
            assert isinstance(event, ApplicationArrival) and event.app == app, (
                f"{where}: application {app!r} appeared without an arrival"
                f"{context}"
            )
            for core, _ in assignment:
                assert f"{app}:{core}" in moved, (
                    f"{where}: arriving core {app}:{core} not in the remap "
                    f"scope{context}"
                )
            continue
        before = dict(previous_apps[app])
        for core, tile in assignment:
            if f"{app}:{core}" in moved:
                continue
            assert before.get(core) == tile, (
                f"{where}: survivor {app}:{core} moved from "
                f"{before.get(core)} to {tile} outside the remap scope"
                f"{context}"
            )


def _check_scope_minimality(
    script: ScenarioScript,
    incremental: ScenarioTrace,
    full: ScenarioTrace,
    tag: str,
) -> None:
    """Incremental remapping never searches more than a full re-search."""
    context = f"\nreplayable script: {replayable(script)}"
    assert len(incremental.records) == len(full.records), (
        f"{tag}: incremental and full traces disagree on event count{context}"
    )
    for inc, ful in zip(incremental.records, full.records):
        where = f"{tag}: event {inc.index} ({inc.kind})"
        assert (inc.outcome.status, inc.outcome.reason) == (
            ful.outcome.status,
            ful.outcome.reason,
        ), (
            f"{where}: remap mode changed the event verdict "
            f"({inc.outcome.describe()} vs {ful.outcome.describe()})"
            f"{context}"
        )
        assert inc.searched_tiles <= ful.searched_tiles, (
            f"{where}: incremental remap searched {inc.searched_tiles} "
            f"tiles, full remap only {ful.searched_tiles}{context}"
        )
        assert len(inc.remapped) <= len(ful.remapped), (
            f"{where}: incremental remap moved more cores "
            f"({len(inc.remapped)}) than full remap ({len(ful.remapped)})"
            f"{context}"
        )


__all__ = [
    "ScenarioConformanceReport",
    "check_scenario_conformance",
    "replayable",
]
