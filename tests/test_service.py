"""The mapping service (repro.service): store, daemon, shm transport, client.

Four contracts are pinned here:

* **Content identity** — ``content_hash()`` digests depend on graph content
  only (edge order, insertion order and display names are invisible; any
  edit to bits/edges/cores is not).
* **Bit-identity** — service-priced vectors and costs equal
  :class:`~repro.eval.parallel.SerialBackend` results exactly, on mesh,
  torus and irregular fabrics, for both models, whatever mix of store hits
  and misses produced them.
* **Durability** — corrupted, truncated or version-mismatched store files
  are warnings and cache misses, never exceptions; concurrent writers never
  torn-write; byte budgets evict rather than grow.
* **Isolation** — the paper-reproduction pipeline
  (:class:`~repro.analysis.comparison.ComparisonConfig`) never touches the
  service unless a backend is passed explicitly, and passing one changes no
  published number.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import warnings

import pytest

from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.core.mapping import Mapping
from repro.core.metrics import MetricVector
from repro.eval.context import CdcmEvaluationContext, CwmEvaluationContext
from repro.eval.parallel import SerialBackend
from repro.graphs.cdcg import CDCG
from repro.graphs.convert import cdcg_to_cwg
from repro.graphs.cwg import CWG, cwg_from_edges
from repro.noc.platform import Platform
from repro.noc.topology import IrregularTopology, Mesh, Torus
from repro.service import (
    STORE_VERSION,
    EvalJob,
    JobResult,
    MappingDaemon,
    ResultStore,
    ServiceBackend,
    SharedArrayBackend,
    StoreCorruptionWarning,
    mapping_digest,
    platform_digest,
    scope_for_context,
    shared_memory_available,
    workload_digest,
)
from repro.service.client import ServiceClient, ServiceServer
from repro.utils.errors import ConfigurationError
from repro.utils.hashing import canonical_token, stable_digest
from repro.workloads.suite import suite_entry_by_name
from repro.workloads.tgff import TgffLikeGenerator, TgffSpec

N_WORKERS = int(os.environ.get("REPRO_TEST_N_WORKERS", "2"))

EDGES = [("a", "b", 100), ("b", "c", 250), ("c", "a", 75), ("a", "d", 40)]


@pytest.fixture(scope="module")
def workload():
    """A 9-core generated application on a 3x3 mesh."""
    spec = TgffSpec(name="svc", num_cores=9, num_packets=30, total_bits=40_000)
    cdcg = TgffLikeGenerator(23).generate(spec)
    return cdcg, cdcg_to_cwg(cdcg), Platform(mesh=Mesh(3, 3))


def _random_mappings(cores, num_tiles, count, offset=0):
    return [
        Mapping.random(cores, num_tiles, rng=offset + seed)
        for seed in range(count)
    ]


# ---------------------------------------------------------------------------
# Satellite (a): stable content hashes
# ---------------------------------------------------------------------------
class TestContentHash:
    def test_cwg_edge_order_independent(self):
        forward = cwg_from_edges("fwd", EDGES)
        backward = cwg_from_edges("bwd", list(reversed(EDGES)))
        assert forward.content_hash() == backward.content_hash()

    def test_cwg_name_independent(self):
        assert (
            cwg_from_edges("x", EDGES).content_hash()
            == cwg_from_edges("y", EDGES).content_hash()
        )

    def test_cwg_changed_bits_differ(self):
        changed = [("a", "b", 101)] + EDGES[1:]
        assert (
            cwg_from_edges("x", EDGES).content_hash()
            != cwg_from_edges("x", changed).content_hash()
        )

    def test_cwg_extra_core_differs(self):
        base = cwg_from_edges("x", EDGES)
        extra = cwg_from_edges("x", EDGES, cores=["isolated"])
        assert base.content_hash() != extra.content_hash()

    def test_cdcg_insertion_order_independent(self):
        def build(order):
            cdcg = CDCG("perm")
            packets = [
                ("p1", "a", "b", 1.0, 64),
                ("p2", "b", "c", 2.0, 128),
                ("p3", "c", "a", 0.5, 32),
            ]
            for name, src, dst, comp, bits in order(packets):
                cdcg.add_packet(name, src, dst, computation_time=comp, bits=bits)
            cdcg.add_dependence("p1", "p2")
            cdcg.add_dependence("p2", "p3")
            return cdcg

        assert build(list).content_hash() == build(
            lambda p: list(reversed(p))
        ).content_hash()

    def test_cdcg_changed_bits_differ(self, workload):
        cdcg, _, _ = workload
        clone = cdcg.copy()
        packet = clone.packets[0]
        clone2 = CDCG(clone.name)
        for p in clone.packets:
            bits = p.bits + 1 if p.name == packet.name else p.bits
            clone2.add_packet(
                p.name, p.source, p.target,
                computation_time=p.computation_time, bits=bits,
            )
        for before, after in clone.dependences():
            clone2.add_dependence(before, after)
        assert clone.content_hash() == cdcg.content_hash()
        assert clone2.content_hash() != cdcg.content_hash()

    def test_suite_entry_hash_deterministic_and_distinct(self):
        a1 = suite_entry_by_name("3x3-a")
        a2 = suite_entry_by_name("3x3-a")
        b = suite_entry_by_name("3x3-b")
        assert a1.content_hash() == a2.content_hash()
        assert a1.content_hash() != b.content_hash()

    def test_canonical_token_rejects_unhashable_types(self):
        with pytest.raises(ConfigurationError):
            canonical_token(object())

    def test_stable_digest_distinguishes_types(self):
        assert stable_digest(1) != stable_digest("1")
        assert stable_digest(True) != stable_digest(1)
        assert stable_digest((1, 2)) != stable_digest([1, [2]])


# ---------------------------------------------------------------------------
# Store keys
# ---------------------------------------------------------------------------
class TestStoreKeys:
    def test_mapping_digest_stable_across_construction(self):
        a = Mapping({"x": 0, "y": 5, "z": 2}, num_tiles=9)
        b = Mapping([("z", 2), ("x", 0), ("y", 5)], num_tiles=9)
        assert mapping_digest(a) == mapping_digest(b)
        assert mapping_digest(a) == mapping_digest({"x": 0, "y": 5, "z": 2})

    def test_mapping_digest_differs_on_any_move(self):
        base = Mapping({"x": 0, "y": 5}, num_tiles=9)
        assert mapping_digest(base) != mapping_digest(base.swap_tiles(0, 1))

    def test_workload_digest_requires_content_hash(self):
        with pytest.raises(ConfigurationError):
            workload_digest(object())

    def test_platform_digest_covers_noc_parameters(self):
        from repro.noc.platform import NocParameters

        base = Platform(mesh=Mesh(3, 3))
        slower = Platform(
            mesh=Mesh(3, 3),
            parameters=NocParameters(link_cycles=9),
        )
        # The shared route-table key ignores NocParameters; the store key
        # must not, because CDCM prices depend on them.
        assert platform_digest(base) != platform_digest(slower)
        assert platform_digest(base) != platform_digest(base, include_local=False)

    def test_scope_separates_models_and_workloads(self, workload):
        cdcg, cwg, platform = workload
        cwm = CwmEvaluationContext(cwg, platform)
        cdcm = CdcmEvaluationContext(cdcg, platform)
        assert scope_for_context(cwm) != scope_for_context(cdcm)
        other = cwg_from_edges("other", EDGES)
        assert scope_for_context(
            CwmEvaluationContext(other, platform)
        ) != scope_for_context(cwm)

    def test_scope_rejects_unknown_contexts(self):
        with pytest.raises(ConfigurationError):
            scope_for_context(object())


# ---------------------------------------------------------------------------
# Tentpole: the persistent result store
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        vector = MetricVector(("energy", "time"), (1.25e-7, 431.0))
        store = ResultStore(tmp_path / "store")
        store.put("scope", "digest", vector)
        assert store.get("scope", "digest") == vector
        # A brand-new store over the same root answers from disk.
        fresh = ResultStore(tmp_path / "store")
        assert fresh.get("scope", "digest") == vector
        assert fresh.stats.disk_hits == 1

    def test_float_values_roundtrip_bit_exactly(self, tmp_path):
        values = (0.1 + 0.2, 1e-300, 2.0 ** -1074, -0.0, 1.7976931348623157e308)
        vector = MetricVector(("a", "b", "c", "d", "e"), values)
        store = ResultStore(tmp_path)
        store.put("s", "d", vector)
        store.clear_memory()
        loaded = store.get("s", "d")
        assert loaded is not None
        assert all(x == y for x, y in zip(loaded.values, values))

    def test_memory_front_and_counters(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=2)
        for i in range(3):
            store.put("s", f"d{i}", MetricVector(("m",), (float(i),)))
        # d0 was evicted from the LRU front but survives on disk.
        assert store.get("s", "d0").values == (0.0,)
        stats = store.stats
        assert stats.disk_hits == 1 and stats.writes == 3
        assert store.get("s", "d0").values == (0.0,)
        assert store.stats.memory_hits == 1

    def test_miss_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("s", "missing") is None
        assert store.stats.misses == 1 and store.stats.hit_rate == 0.0

    def test_validates_configuration(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path, byte_budget=0)
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path, memory_entries=-1)


class TestStoreDurability:
    def _entry_path(self, store, scope, digest):
        return store.root / scope / f"{digest}.json"

    def test_corrupt_garbage_is_a_warning_and_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("s", "d", MetricVector(("m",), (1.0,)))
        store.clear_memory()
        self._entry_path(store, "s", "d").write_bytes(b"\x00\xff not json")
        with pytest.warns(StoreCorruptionWarning):
            assert store.get("s", "d") is None
        assert store.stats.corrupt_skipped == 1
        # A rewrite heals the entry.
        store.put("s", "d", MetricVector(("m",), (2.0,)))
        store.clear_memory()
        assert store.get("s", "d").values == (2.0,)

    def test_truncated_json_is_a_warning_and_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("s", "d", MetricVector(("m",), (1.0,)))
        store.clear_memory()
        path = self._entry_path(store, "s", "d")
        path.write_text(path.read_text()[:10])
        with pytest.warns(StoreCorruptionWarning):
            assert store.get("s", "d") is None

    def test_version_mismatch_is_a_warning_and_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("s", "d", MetricVector(("m",), (1.0,)))
        store.clear_memory()
        path = self._entry_path(store, "s", "d")
        payload = json.loads(path.read_text())
        payload["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.warns(StoreCorruptionWarning):
            assert store.get("s", "d") is None

    def test_malformed_payload_is_a_warning_and_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._entry_path(store, "s", "d")
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": STORE_VERSION, "names": "no"}))
        with pytest.warns(StoreCorruptionWarning):
            assert store.get("s", "d") is None

    def test_concurrent_writers_never_tear(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=0)
        vector = MetricVector(("m", "n"), (3.14159, 2.71828))
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    store.put_many(
                        "s", [(f"d{i}", vector) for i in range(8)]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any corruption warning fails
            for i in range(8):
                assert store.get("s", f"d{i}") == vector

    def test_byte_budget_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=0)
        vector = MetricVector(("m",), (1.0,))
        store.put("s", "old", vector)
        entry_bytes = store.disk_bytes()
        budget = entry_bytes * 3 + entry_bytes // 2  # room for 3 entries
        capped = ResultStore(tmp_path, byte_budget=budget, memory_entries=0)
        os.utime(
            capped.root / "s" / "old.json", (1_000_000_000, 1_000_000_000)
        )
        for name in ("new1", "new2", "new3"):
            capped.put("s", name, vector)
        assert capped.stats.evictions >= 1
        assert capped.get("s", "old") is None  # oldest entry went first
        assert capped.get("s", "new3") == vector
        assert capped.disk_bytes() <= budget


# ---------------------------------------------------------------------------
# Tentpole: ServiceBackend bit-identity and warm-store behaviour
# ---------------------------------------------------------------------------
def _irregular_fabric() -> IrregularTopology:
    return IrregularTopology(
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 2), (4, 6),
         (6, 7), (7, 5), (7, 8), (8, 6)],
        name="fabric9",
    )


class TestServiceBackend:
    @pytest.mark.parametrize(
        "platform",
        [
            Platform(mesh=Mesh(3, 3)),
            Platform(mesh=Torus(3, 3)),
            Platform(mesh=_irregular_fabric(), routing="table"),
        ],
        ids=["mesh", "torus", "irregular"],
    )
    @pytest.mark.parametrize("model", ["cwm", "cdcm"])
    def test_bit_identical_to_serial(self, tmp_path, workload, platform, model):
        cdcg, cwg, _ = workload
        if model == "cwm":
            make = lambda: CwmEvaluationContext(cwg, platform, cache_size=0)
        else:
            make = lambda: CdcmEvaluationContext(cdcg, platform, cache_size=0)
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 12)
        serial = SerialBackend().evaluate_metrics(make(), mappings)
        service = ServiceBackend(ResultStore(tmp_path / model / platform.mesh.name
                                             if hasattr(platform.mesh, "name")
                                             else tmp_path / model))
        cold = service.evaluate_metrics(make(), mappings)
        warm = service.evaluate_metrics(make(), mappings)
        assert cold == serial
        assert warm == serial
        assert service.priced == len(mappings)
        assert service.store_hits == len(mappings)

    def test_scalar_evaluate_matches_serial(self, tmp_path, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 6)
        reference = SerialBackend().evaluate(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        service = ServiceBackend(ResultStore(tmp_path))
        context = CdcmEvaluationContext(cdcg, platform, cache_size=0)
        assert service.evaluate(context, mappings) == reference

    def test_warm_weight_sweep_prices_nothing(self, tmp_path, workload):
        """The acceptance criterion: an identical weight-sweep job against a
        warm store re-prices zero candidates (hit rate == 1.0)."""
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 10)
        store = ResultStore(tmp_path)
        service = ServiceBackend(store)
        sweeps = [
            {"energy": 1.0, "time": 0.0},
            {"energy": 0.5, "time": 0.5},
            {"energy": 0.0, "time": 1.0},
        ]
        # Cold pass: prices everything once.
        context = CdcmEvaluationContext(
            cdcg, platform, cache_size=0, backend=service
        )
        cold = [
            [v.weighted_sum(w, strict=False)
             for v in context.evaluate_metrics_batch(mappings)]
            for w in sweeps
        ]
        priced_after_cold = service.priced
        assert priced_after_cold == len(mappings)
        # Warm pass: a fresh context (fresh memo, fresh process in spirit)
        # repeats the identical sweep — nothing is re-priced.
        store.reset_stats()
        fresh = CdcmEvaluationContext(
            cdcg, platform, cache_size=0, backend=service
        )
        warm = [
            [v.weighted_sum(w, strict=False)
             for v in fresh.evaluate_metrics_batch(mappings)]
            for w in sweeps
        ]
        assert warm == cold
        assert service.priced == priced_after_cold  # delta == 0
        assert store.stats.hit_rate == 1.0

    def test_store_survives_process_restart_semantics(self, tmp_path, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 5)
        first = ServiceBackend(ResultStore(tmp_path))
        vectors = first.evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        # New store instance over the same root = a new process.
        second = ServiceBackend(ResultStore(tmp_path))
        again = second.evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        assert again == vectors
        assert second.priced == 0 and second.store_hits == len(mappings)

    def test_inner_backend_prices_misses(self, tmp_path, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 8)
        reference = SerialBackend().evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        with SharedArrayBackend(n_workers=N_WORKERS, min_batch_size=2) as inner:
            service = ServiceBackend(ResultStore(tmp_path), inner=inner)
            got = service.evaluate_metrics(
                CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
            )
        assert got == reference


# ---------------------------------------------------------------------------
# Tentpole: shared-memory transport
# ---------------------------------------------------------------------------
class TestSharedArrayBackend:
    @pytest.fixture(scope="class")
    def pool(self):
        backend = SharedArrayBackend(n_workers=N_WORKERS, min_batch_size=2)
        yield backend
        backend.close()

    def test_shm_identical_to_serial(self, pool, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 16)
        serial = SerialBackend().evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        before = pool.shm_batches
        got = pool.evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        assert got == serial
        if shared_memory_available():
            assert pool.shm_batches == before + 1

    def test_cwm_shm_identical_to_serial(self, pool, workload):
        _, cwg, platform = workload
        mappings = _random_mappings(cwg.cores, platform.num_tiles, 16)
        serial = SerialBackend().evaluate_metrics(
            CwmEvaluationContext(cwg, platform, cache_size=0), mappings
        )
        got = pool.evaluate_metrics(
            CwmEvaluationContext(cwg, platform, cache_size=0), mappings
        )
        assert got == serial

    def test_dict_candidates_fall_back_to_pickle(self, pool, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 8)
        dicts = [m.assignments() for m in mappings]
        serial = SerialBackend().evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), dicts
        )
        before = pool.pickle_batches
        got = pool.evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), dicts
        )
        assert got == serial
        assert pool.pickle_batches == before + 1

    def test_mixed_core_sets_fall_back_to_pickle(self, pool, workload):
        _, cwg, platform = workload
        mappings = _random_mappings(cwg.cores, platform.num_tiles, 7)
        # One candidate places an extra (isolated, unknown-to-the-kernel)
        # subset of cores — same length, different core set.
        kept = dict(list(mappings[0])[:-1])
        free = next(
            t for t in range(platform.num_tiles) if t not in kept.values()
        )
        odd = Mapping(kept | {"ghost": free}, num_tiles=platform.num_tiles)
        batch = mappings + [odd]
        before = pool.pickle_batches
        with pytest.raises(Exception):
            # ghost is not a core of the CWG: the fallback still prices via
            # pickle (counted), then the context rejects the bad candidate
            # exactly as the serial path would.
            pool.evaluate_metrics(
                CwmEvaluationContext(cwg, platform, cache_size=0), batch
            )
        assert pool.pickle_batches == before + 1

    def test_forced_pickle_transport(self, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 8)
        with SharedArrayBackend(
            n_workers=N_WORKERS, min_batch_size=2, transport="pickle"
        ) as pool:
            serial = SerialBackend().evaluate_metrics(
                CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
            )
            got = pool.evaluate_metrics(
                CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
            )
            assert got == serial
            assert pool.shm_batches == 0 and pool.pickle_batches == 1

    def test_small_batches_price_inline(self, pool, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 1)
        before = (pool.shm_batches, pool.pickle_batches)
        got = pool.evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        assert (pool.shm_batches, pool.pickle_batches) == before
        assert got == SerialBackend().evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )

    def test_rejects_unknown_transport(self):
        with pytest.raises(ConfigurationError):
            SharedArrayBackend(transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# Tentpole: the daemon
# ---------------------------------------------------------------------------
class TestMappingDaemon:
    def test_run_matches_serial_and_warms(self, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 8)
        serial = SerialBackend().evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        with MappingDaemon() as daemon:
            first = daemon.run(
                EvalJob(application=cdcg, platform=platform, mappings=mappings)
            )
            assert list(first.vectors) == serial
            assert first.priced == len(mappings) and first.hit_rate == 0.0
            second = daemon.run(
                EvalJob(
                    application=cdcg,
                    platform=platform,
                    mappings=mappings,
                    weights={"time": 1.0},
                )
            )
            assert second.priced == 0 and second.hit_rate == 1.0
            assert list(second.vectors) == serial
            expected = [v.weighted_sum({"time": 1.0}, strict=False) for v in serial]
            assert list(second.costs) == expected

    def test_cwm_job_accepts_cdcg(self, workload):
        cdcg, cwg, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 4)
        serial = SerialBackend().evaluate_metrics(
            CwmEvaluationContext(cwg, platform, cache_size=0), mappings
        )
        with MappingDaemon() as daemon:
            result = daemon.run(
                EvalJob(
                    application=cdcg,
                    platform=platform,
                    mappings=mappings,
                    model="cwm",
                )
            )
        assert list(result.vectors) == serial

    def test_submit_poll_result_lifecycle(self, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 3)
        with MappingDaemon() as daemon:
            job_id = daemon.submit(
                EvalJob(application=cdcg, platform=platform, mappings=mappings,
                        label="sweep-7")
            )
            result = daemon.result(job_id, timeout=60)
            assert isinstance(result, JobResult)
            assert result.label == "sweep-7" and result.job_id == job_id
            assert daemon.poll(job_id) == "done"
            stats = daemon.stats()
            assert stats["jobs_done"] == 1
            assert stats["resident_contexts"] == 1

    def test_job_errors_are_reported_not_fatal(self, workload):
        cdcg, _, platform = workload
        with MappingDaemon() as daemon:
            job_id = daemon.submit(
                EvalJob(application=object(), platform=platform, mappings=[])
            )
            with pytest.raises(ConfigurationError):
                daemon.result(job_id, timeout=60)
            assert daemon.poll(job_id) == "error"
            # The daemon survives and still serves good jobs.
            good = daemon.run(
                EvalJob(
                    application=cdcg,
                    platform=platform,
                    mappings=_random_mappings(cdcg.cores(), platform.num_tiles, 2),
                )
            )
            assert len(good.vectors) == 2

    def test_rejects_bad_inputs(self, workload):
        cdcg, _, platform = workload
        with pytest.raises(ConfigurationError):
            EvalJob(application=cdcg, platform=platform, mappings=[], model="xyz")
        with pytest.raises(ConfigurationError):
            MappingDaemon(max_contexts=0)
        with MappingDaemon() as daemon:
            with pytest.raises(ConfigurationError):
                daemon.submit("not a job")
            with pytest.raises(ConfigurationError):
                daemon.poll("job-999")
        with pytest.raises(ConfigurationError):
            daemon.submit(
                EvalJob(application=cdcg, platform=platform, mappings=[])
            )  # closed daemon refuses new work

    def test_resident_context_lru_bounded(self, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 2)
        with MappingDaemon(max_contexts=1) as daemon:
            daemon.run(EvalJob(application=cdcg, platform=platform,
                               mappings=mappings, model="cdcm"))
            daemon.run(EvalJob(application=cdcg, platform=platform,
                               mappings=mappings, model="cwm"))
            assert daemon.stats()["resident_contexts"] == 1


# ---------------------------------------------------------------------------
# Satellite (b): worker-pool lifecycle — nothing leaks after shutdown
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_daemon_close_leaves_no_worker_processes(self, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 12)
        baseline = {p.pid for p in multiprocessing.active_children()}
        daemon = MappingDaemon(n_workers=N_WORKERS)
        # Force the owned pool to actually spin up workers.
        daemon.backend.min_batch_size = 2
        daemon.run(EvalJob(application=cdcg, platform=platform, mappings=mappings))
        assert any(
            p.pid not in baseline for p in multiprocessing.active_children()
        ), "the job should have spun up pool workers"
        daemon.close()
        leaked = [
            p for p in multiprocessing.active_children() if p.pid not in baseline
        ]
        assert not leaked, f"daemon.close() leaked workers: {leaked}"

    def test_backend_context_manager_shuts_pool_down(self, workload):
        cdcg, _, platform = workload
        baseline = {p.pid for p in multiprocessing.active_children()}
        with SharedArrayBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            pool.evaluate_metrics(
                CdcmEvaluationContext(cdcg, platform, cache_size=0),
                _random_mappings(cdcg.cores(), platform.num_tiles, 8),
            )
        leaked = [
            p for p in multiprocessing.active_children() if p.pid not in baseline
        ]
        assert not leaked

    def test_daemon_close_is_idempotent(self):
        daemon = MappingDaemon()
        daemon.close()
        daemon.close()

    def test_daemon_borrowed_backend_not_closed(self, workload):
        cdcg, _, platform = workload
        with SharedArrayBackend(n_workers=N_WORKERS, min_batch_size=2) as pool:
            with MappingDaemon(backend=pool) as daemon:
                daemon.run(
                    EvalJob(
                        application=cdcg,
                        platform=platform,
                        mappings=_random_mappings(
                            cdcg.cores(), platform.num_tiles, 8
                        ),
                    )
                )
            # The daemon is gone; the borrowed pool still prices.
            got = pool.evaluate_metrics(
                CdcmEvaluationContext(cdcg, platform, cache_size=0),
                _random_mappings(cdcg.cores(), platform.num_tiles, 8, offset=50),
            )
            assert len(got) == 8


# ---------------------------------------------------------------------------
# Socket client/server
# ---------------------------------------------------------------------------
class TestSocketService:
    def test_round_trip(self, tmp_path, workload):
        cdcg, _, platform = workload
        mappings = _random_mappings(cdcg.cores(), platform.num_tiles, 6)
        serial = SerialBackend().evaluate_metrics(
            CdcmEvaluationContext(cdcg, platform, cache_size=0), mappings
        )
        sock = str(tmp_path / "svc.sock")
        with MappingDaemon() as daemon:
            with ServiceServer(daemon, sock):
                client = ServiceClient(sock, timeout=120)
                assert client.ping()
                job_id = client.submit(
                    EvalJob(application=cdcg, platform=platform,
                            mappings=mappings)
                )
                result = client.result(job_id)
                assert list(result.vectors) == serial
                assert client.poll(job_id) == "done"
                assert client.stats()["jobs_done"] == 1

    def test_unknown_job_id_is_an_error_response(self, tmp_path):
        sock = str(tmp_path / "svc.sock")
        with MappingDaemon() as daemon:
            with ServiceServer(daemon, sock):
                client = ServiceClient(sock, timeout=30)
                with pytest.raises(ConfigurationError, match="unknown job id"):
                    client.poll("job-404")

    def test_shutdown_op_stops_server(self, tmp_path):
        sock = str(tmp_path / "svc.sock")
        with MappingDaemon() as daemon:
            server = ServiceServer(daemon, sock)
            client = ServiceClient(sock, timeout=30)
            client.shutdown()
            assert not server._running
            assert not os.path.exists(sock)


# ---------------------------------------------------------------------------
# ComparisonConfig: the service is pinned off for reproduced tables
# ---------------------------------------------------------------------------
class TestComparisonPin:
    def test_default_backend_is_none(self):
        assert ComparisonConfig().backend is None

    def test_reproduction_never_touches_the_service(self, workload, monkeypatch):
        from repro.search.annealing import FAST_SCHEDULE

        def explode(*args, **kwargs):  # pragma: no cover - would be the bug
            raise AssertionError(
                "ComparisonConfig engaged a backend by default"
            )

        monkeypatch.setattr(ServiceBackend, "evaluate_metrics", explode)
        monkeypatch.setattr(ServiceBackend, "evaluate", explode)
        cdcg, _, platform = workload
        config = ComparisonConfig(annealing_schedule=FAST_SCHEDULE)
        comparison = compare_models(cdcg, platform, config, seed=3)
        assert comparison.cwm_outcome.mapping is not None

    def test_service_backend_changes_no_published_number(
        self, tmp_path, workload
    ):
        from repro.search.annealing import FAST_SCHEDULE

        cdcg, _, platform = workload
        baseline = compare_models(
            cdcg,
            platform,
            ComparisonConfig(annealing_schedule=FAST_SCHEDULE),
            seed=11,
        )
        service = ServiceBackend(ResultStore(tmp_path))
        with_service = compare_models(
            cdcg,
            platform,
            ComparisonConfig(
                annealing_schedule=FAST_SCHEDULE, backend=service
            ),
            seed=11,
        )
        assert with_service.cwm_outcome.mapping == baseline.cwm_outcome.mapping
        assert with_service.cdcm_outcome.mapping == baseline.cdcm_outcome.mapping
        assert with_service.cwm_outcome.cost == baseline.cwm_outcome.cost
        assert with_service.cdcm_outcome.cost == baseline.cdcm_outcome.cost
        assert (
            with_service.cwm_mapping_time == baseline.cwm_mapping_time
            and with_service.cdcm_mapping_time == baseline.cdcm_mapping_time
        )
