"""The array pricing kernel (repro.eval.vector) and its wiring.

The contract under test is **bit-identity**: the vectorised batch path must
return the exact floats the scalar accumulator returns — same gathers, same
left-to-right edge-order reduction — across topologies, table modes (eager
and lazy), duplicate candidates and empty populations.  This mirrors how the
serial==pooled contract is pinned in ``tests/test_parallel.py``, including a
regression that the paper-reproduction pipeline (``ComparisonConfig``) never
engages the kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import ComparisonConfig, compare_models
from repro.core.mapping import Mapping
from repro.core.objective import cwm_objective
from repro.eval.context import CwmEvaluationContext
from repro.eval.parallel import ProcessPoolBackend, SerialBackend
from repro.eval.route_table import RouteTable
from repro.eval.vector import (
    VectorizedCwmKernel,
    array_to_mappings,
    population_to_array,
)
from repro.graphs.cwg import CWG, cwg_from_edges
from repro.noc.platform import Platform
from repro.noc.routing import TableRouting, XYRouting
from repro.noc.topology import IrregularTopology, Mesh, Torus
from repro.search.genetic import GeneticParameters, GeneticSearch
from repro.utils.errors import ConfigurationError, MappingError
from repro.workloads.paper_example import paper_example_cdcg


def _random_cwg(rng: np.random.Generator, num_cores: int) -> CWG:
    """A random CWG over ``c0..c{n-1}`` with integer volumes."""
    cores = [f"c{i}" for i in range(num_cores)]
    edges = []
    for source in range(num_cores):
        for target in range(num_cores):
            if source != target and rng.random() < 0.4:
                edges.append(
                    (cores[source], cores[target], int(rng.integers(1, 5000)))
                )
    if not edges:
        edges.append((cores[0], cores[-1], int(rng.integers(1, 5000))))
    return cwg_from_edges("random", edges, cores=cores)


def _irregular_platform() -> Platform:
    topology = IrregularTopology(
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 2), (4, 6),
         (6, 7), (7, 5), (7, 8)],
        name="fabric9",
    )
    return Platform(mesh=topology, routing=TableRouting())


_PLATFORMS = [
    Platform(mesh=Mesh(3, 3)),
    Platform(mesh=Torus(3, 3)),
    _irregular_platform(),
]


def _population(cwg: CWG, num_tiles: int, seed: int, size: int):
    rng = np.random.default_rng(seed)
    return [Mapping.random(cwg.cores, num_tiles, rng=rng) for _ in range(size)]


class TestMappingArrayRoundTrip:
    def test_default_order_is_sorted_cores(self):
        mapping = Mapping({"b": 2, "a": 0, "c": 1}, num_tiles=4)
        row = mapping.to_index_array()
        assert row.dtype == np.int64
        assert row.tolist() == [0, 2, 1]  # a, b, c — sorted core names

    def test_round_trip_is_identity(self):
        rng = np.random.default_rng(11)
        cwg = _random_cwg(rng, 7)
        for mapping in _population(cwg, 9, 5, 20):
            rebuilt = Mapping.from_index_array(
                mapping.cores, mapping.to_index_array(), mapping.num_tiles
            )
            assert rebuilt == mapping
            assert rebuilt.num_tiles == mapping.num_tiles

    def test_explicit_order(self):
        mapping = Mapping({"x": 3, "y": 1})
        assert mapping.to_index_array(["y", "x"]).tolist() == [1, 3]

    def test_missing_core_raises(self):
        with pytest.raises(MappingError):
            Mapping({"a": 0}).to_index_array(["a", "b"])

    def test_from_index_array_validates(self):
        with pytest.raises(MappingError):
            Mapping.from_index_array(["a", "b"], [1, 1])  # not injective
        with pytest.raises(MappingError):
            Mapping.from_index_array(["a", "b"], [0, 9], num_tiles=4)
        with pytest.raises(MappingError):
            Mapping.from_index_array(["a", "b"], [0])  # length mismatch

    def test_population_helpers_round_trip(self):
        rng = np.random.default_rng(3)
        cwg = _random_cwg(rng, 6)
        mappings = _population(cwg, 9, 8, 12)
        order = sorted(cwg.cores)
        array = population_to_array(mappings, order, num_tiles=9)
        assert array.shape == (12, 6)
        assert array_to_mappings(array, order, num_tiles=9) == mappings
        # Dict candidates stack too.
        dicts = [m.assignments() for m in mappings]
        assert np.array_equal(population_to_array(dicts, order), array)

    def test_population_helpers_validate(self):
        with pytest.raises(MappingError):
            population_to_array([{"a": 0}], ["a", "b"])
        with pytest.raises(MappingError):
            population_to_array([{"a": 7}], ["a"], num_tiles=4)
        with pytest.raises(MappingError):
            array_to_mappings(np.zeros((2, 3), dtype=np.int64), ["a", "b"])


class TestRouteTableDense:
    def test_eager_arrays_match_scalar_lookups(self):
        for platform in _PLATFORMS:
            table = RouteTable.for_platform(platform, precompute=True)
            energy, hops = table.as_arrays()
            n = table.num_tiles
            assert energy.shape == hops.shape == (n, n)
            for source in range(n):
                for target in range(n):
                    assert energy[source, target] == table.bit_energy(
                        source, target
                    )
                    assert hops[source, target] == table.hop_count(
                        source, target
                    )

    def test_flat_energy_shares_dense_allocation(self):
        table = RouteTable.for_platform(Platform(mesh=Mesh(3, 3)))
        energy, _ = table.as_arrays()
        assert energy.base is table.flat_bit_energy()

    def test_dense_views_are_read_only(self):
        table = RouteTable.for_platform(Platform(mesh=Mesh(2, 2)))
        energy, hops = table.as_arrays()
        with pytest.raises(ValueError):
            energy[0, 0] = 1.0
        with pytest.raises(ValueError):
            hops[0, 0] = 1

    def test_cold_lazy_table_raises_until_warmed(self):
        table = RouteTable.for_platform(
            Platform(mesh=Mesh(3, 3)), precompute=False
        )
        assert not table.is_dense
        with pytest.raises(ConfigurationError):
            table.as_arrays()
        table.warm_dense()
        assert table.is_dense
        assert table.flat_bit_energy() is not None

    def test_warm_dense_matches_eager(self):
        for platform in _PLATFORMS:
            eager = RouteTable.for_platform(platform, precompute=True)
            lazy = RouteTable.for_platform(platform, precompute=False)
            lazy_energy, lazy_hops = lazy.warm_dense()
            eager_energy, eager_hops = eager.as_arrays()
            assert np.array_equal(lazy_energy, eager_energy)
            assert np.array_equal(lazy_hops, eager_hops)
            # Scalar lookups answer from the dense matrices afterwards.
            assert lazy.bit_energy(1, 2) == eager.bit_energy(1, 2)
            assert lazy.hop_count(2, 1) == eager.hop_count(2, 1)

    def test_warm_dense_reuses_memoised_pairs(self, monkeypatch):
        platform = Platform(mesh=Mesh(3, 3))
        table = RouteTable.for_platform(platform, precompute=False)
        # Memoise a handful of pairs, then count the routing calls the
        # densify pass makes: exactly one per *missing* pair.
        warmed = [(0, 5), (7, 2), (4, 4)]
        for source, target in warmed:
            table.bit_energy(source, target)
        calls = []
        original = type(table.routing).route

        def counting_route(self, topology, source, target):
            calls.append((source, target))
            return original(self, topology, source, target)

        monkeypatch.setattr(type(table.routing), "route", counting_route)
        table.warm_dense()
        assert len(calls) == table.num_tiles**2 - len(warmed)
        assert not (set(warmed) & set(calls))
        # Idempotent: a second call routes nothing.
        calls.clear()
        table.warm_dense()
        assert calls == []

    def test_warm_dense_is_noop_on_eager(self):
        table = RouteTable.for_platform(Platform(mesh=Mesh(2, 2)))
        energy, hops = table.warm_dense()
        assert energy.base is table.flat_bit_energy()


class TestVectorScalarBitIdentity:
    @pytest.mark.parametrize("platform", _PLATFORMS, ids=lambda p: str(p.mesh))
    @pytest.mark.parametrize("precompute", [True, False], ids=["eager", "lazy"])
    def test_exact_equality_across_topologies_and_tables(
        self, platform, precompute
    ):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            cwg = _random_cwg(rng, 6)
            table = RouteTable.for_platform(platform, precompute=precompute)
            scalar = CwmEvaluationContext(
                cwg, platform, route_table=table, vectorize=False
            )
            vector = CwmEvaluationContext(
                cwg, platform, route_table=table, vectorize=True
            )
            population = _population(cwg, platform.num_tiles, 100 + seed, 24)
            expected = scalar.evaluate_metrics_batch(population)
            got = vector.evaluate_metrics_batch(population)
            assert got == expected  # bit-identical MetricVectors

    def test_duplicates_and_dict_candidates(self):
        platform = Platform(mesh=Mesh(3, 3))
        rng = np.random.default_rng(2)
        cwg = _random_cwg(rng, 5)
        base = _population(cwg, 9, 17, 6)
        population = base + [base[0], base[3]] + [base[1].assignments()]
        scalar = CwmEvaluationContext(cwg, platform, vectorize=False)
        vector = CwmEvaluationContext(cwg, platform, vectorize=True)
        assert vector.evaluate_metrics_batch(
            population
        ) == scalar.evaluate_metrics_batch(population)
        # Duplicates collapse to one kernel row each (same-batch duplicates
        # share the unique slot without counting as memo hits, exactly like
        # the pooled dedup path) and unique Mappings fill the memo.
        assert vector.cache_info().misses == len(base) + 1  # + the dict
        assert vector.cache_info().currsize == len(base)
        # A second batch is answered entirely from the memo.
        vector.evaluate_metrics_batch(base)
        assert vector.cache_info().hits == len(base)

    def test_empty_population(self):
        platform = Platform(mesh=Mesh(2, 2))
        cwg = _random_cwg(np.random.default_rng(1), 3)
        vector = CwmEvaluationContext(cwg, platform, vectorize=True)
        assert vector.evaluate_metrics_batch([]) == []
        assert vector.evaluate_batch([]) == []

    def test_vector_batch_matches_per_candidate_cost(self):
        platform = Platform(mesh=Torus(3, 3))
        cwg = _random_cwg(np.random.default_rng(9), 7)
        vector = CwmEvaluationContext(cwg, platform, vectorize=True)
        reference = CwmEvaluationContext(cwg, platform, vectorize=False)
        population = _population(cwg, 9, 23, 16)
        costs = vector.evaluate_batch(population)
        assert costs == [reference.cost(m) for m in population]

    def test_unplaced_edge_core_raises_like_scalar(self):
        platform = Platform(mesh=Mesh(2, 2))
        cwg = cwg_from_edges("pair", [("a", "b", 100)])
        vector = CwmEvaluationContext(cwg, platform, vectorize=True)
        with pytest.raises(MappingError, match="does not place core"):
            vector.evaluate_metrics_batch([{"a": 0}])

    def test_isolated_core_may_stay_unplaced(self):
        platform = Platform(mesh=Mesh(2, 2))
        cwg = cwg_from_edges("iso", [("a", "b", 100)], cores=["a", "b", "z"])
        scalar = CwmEvaluationContext(cwg, platform, vectorize=False)
        vector = CwmEvaluationContext(cwg, platform, vectorize=True)
        candidate = {"a": 0, "b": 3}  # "z" unplaced — never gathered
        assert vector.evaluate_metrics_batch(
            [candidate]
        ) == scalar.evaluate_metrics_batch([candidate])

    def test_serial_and_pooled_vector_paths_agree(self):
        platform = Platform(mesh=Mesh(3, 3))
        cwg = _random_cwg(np.random.default_rng(21), 8)
        population = _population(cwg, 9, 31, 24)
        vector = CwmEvaluationContext(cwg, platform, vectorize=True)
        expected = vector.evaluate_metrics_batch(
            population, backend=SerialBackend()
        )
        with ProcessPoolBackend(n_workers=2, min_batch_size=2) as pool:
            fresh = CwmEvaluationContext(cwg, platform, vectorize=True)
            assert fresh.evaluate_metrics_batch(population, backend=pool) == expected

    def test_seeded_ga_identical_across_gate(self):
        platform = Platform(mesh=Mesh(3, 3))
        cwg = _random_cwg(np.random.default_rng(5), 7)
        params = GeneticParameters(population_size=10, generations=4)
        initial = Mapping.random(sorted(cwg.cores), 9, rng=1)
        results = []
        for vectorize in (False, True):
            objective = cwm_objective(
                cwg,
                platform,
                context=CwmEvaluationContext(cwg, platform, vectorize=vectorize),
            )
            results.append(GeneticSearch(params).search(objective, initial, rng=42))
        off, on = results
        assert on.best_cost == off.best_cost
        assert on.best_mapping == off.best_mapping
        assert on.history == off.history


class TestKernel:
    def test_kernel_matches_scalar_loop(self):
        platform = Platform(mesh=Mesh(3, 3))
        cwg = _random_cwg(np.random.default_rng(7), 6)
        table = RouteTable.for_platform(platform)
        kernel = VectorizedCwmKernel.from_cwg(cwg, table)
        assert kernel.num_edges == cwg.num_communications
        population = _population(cwg, 9, 13, 10)
        tiles = population_to_array(population, kernel.core_order)
        priced = kernel.price(tiles)
        scalar = CwmEvaluationContext(cwg, platform, vectorize=False)
        assert priced.tolist() == [
            scalar.metrics(m)["dynamic_energy"] for m in population
        ]
        assert np.array_equal(kernel.price_mappings(population), priced)

    def test_hop_volume_matches_manual_sum(self):
        platform = Platform(mesh=Torus(3, 3))
        cwg = _random_cwg(np.random.default_rng(4), 5)
        table = RouteTable.for_platform(platform)
        kernel = VectorizedCwmKernel.from_cwg(cwg, table)
        population = _population(cwg, 9, 19, 6)
        tiles = population_to_array(population, kernel.core_order)
        volumes = kernel.hop_volume(tiles)
        for row, mapping in enumerate(population):
            expected = sum(
                comm.bits * table.hop_count(
                    mapping.tile_of(comm.source), mapping.tile_of(comm.target)
                )
                for comm in cwg.communications()
            )
            assert volumes[row] == expected

    def test_from_cdcg_prices_equation_4_components(self):
        cdcg = paper_example_cdcg()
        from repro.workloads.paper_example import paper_example_platform

        platform = paper_example_platform()
        table = RouteTable.for_platform(platform)
        kernel = VectorizedCwmKernel.from_cdcg(cdcg, table)
        assert kernel.num_edges == len(cdcg.packets)
        mapping = Mapping({"A": 0, "B": 1, "E": 2, "F": 3}, num_tiles=4)
        tiles = population_to_array([mapping], kernel.core_order)
        expected = sum(
            packet.bits * table.bit_energy(
                mapping.tile_of(packet.source), mapping.tile_of(packet.target)
            )
            for packet in cdcg.packets
        )
        assert kernel.price(tiles)[0] == pytest.approx(expected, rel=1e-12)
        expected_hops = sum(
            packet.bits * table.hop_count(
                mapping.tile_of(packet.source), mapping.tile_of(packet.target)
            )
            for packet in cdcg.packets
        )
        assert kernel.hop_volume(tiles)[0] == expected_hops

    def test_kernel_validates_input(self):
        platform = Platform(mesh=Mesh(2, 2))
        cwg = cwg_from_edges("pair", [("a", "b", 10)])
        kernel = VectorizedCwmKernel.from_cwg(
            cwg, RouteTable.for_platform(platform)
        )
        with pytest.raises(MappingError):
            kernel.price(np.zeros((3, 5), dtype=np.int64))  # wrong width
        with pytest.raises(MappingError):
            kernel.price(np.array([[0, 9]]))  # tile out of range
        empty = kernel.price(np.empty((0, 2), dtype=np.int64))
        assert empty.shape == (0,)

    def test_edgeless_application_prices_zero(self):
        platform = Platform(mesh=Mesh(2, 2))
        cwg = CWG("silent")
        for core in ("a", "b"):
            cwg.add_core(core)
        kernel = VectorizedCwmKernel.from_cwg(
            cwg, RouteTable.for_platform(platform)
        )
        assert kernel.price(np.array([[0, 1], [2, 3]])).tolist() == [0.0, 0.0]


class TestComparisonNeverVectorises:
    def test_comparison_config_paths_stay_scalar(
        self, monkeypatch, example_cdcg, example_platform
    ):
        """The Table 1/2 reproduction pipeline must never engage the kernel.

        ``ComparisonConfig`` pins ``vectorize=False`` for the same
        bit-stable-rows rationale as ``use_delta``; poisoning the kernel
        proves no comparison code path constructs or prices through one
        (mirrors ``TestComparisonNeverPools``).
        """

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ComparisonConfig engaged VectorizedCwmKernel")

        monkeypatch.setattr(VectorizedCwmKernel, "__init__", forbidden)
        monkeypatch.setattr(VectorizedCwmKernel, "price", forbidden)
        config = ComparisonConfig(method="exhaustive")
        comparison = compare_models(example_cdcg, example_platform, config, seed=3)
        assert comparison.cwm_outcome.cost > 0

    def test_comparison_config_defaults_pin_gate_off(self):
        assert ComparisonConfig().vectorize is False
        assert ComparisonConfig().use_delta is False

    def test_context_gate_defaults_on(self, example_cdcg, example_platform):
        from repro.graphs.convert import cdcg_to_cwg

        context = CwmEvaluationContext(
            cdcg_to_cwg(example_cdcg), example_platform
        )
        assert context.vectorize is True
